//! Metrics regression gate: compare two [`crate::MetricSet`]s (a
//! checked-in baseline and a fresh run) and fail when a gated value grew
//! by more than a tolerance.
//!
//! Gating rules, chosen to make the gate useful in CI without flaking:
//!
//! - **Counters** and **span invocation counts** are gated — they are
//!   deterministic for seeded workloads, so any growth is a real
//!   algorithmic change (more candidates surviving the filter, more
//!   verification calls). The `engine.*` namespace is exempt, matching
//!   [`crate::MetricSet::deterministic_counters`]: those describe
//!   execution shape and legitimately vary with `--threads`.
//! - **Gauges** (the `mem.*` family) are gated on *increase only* — a
//!   peak-memory or index-size regression fails, shrinkage never does.
//! - **Span p50/p95 latencies** are wall-clock and machine-dependent, so
//!   they are gated only when [`DiffOptions::include_timings`] is set
//!   (CLI `--time`); by default they are reported but never fail.
//! - A gated entry present in the baseline but **missing from the current
//!   run** is a regression: losing instrumentation must not silently pass.
//! - Entries new in the current run are reported as informational.

use crate::MetricSet;

/// What kind of value a [`DiffEntry`] compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A monotonic counter.
    Counter,
    /// A point-in-time gauge (gated on increase only).
    Gauge,
    /// A span's invocation count.
    SpanCount,
    /// A span's p50 latency estimate (gated only with `include_timings`).
    SpanP50,
    /// A span's p95 latency estimate (gated only with `include_timings`).
    SpanP95,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::SpanCount => "span.count",
            Kind::SpanP50 => "span.p50_ns",
            Kind::SpanP95 => "span.p95_ns",
        }
    }
}

/// Outcome of one compared value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Identical on both sides.
    Unchanged,
    /// Lower than the baseline (never fails the gate).
    Improved,
    /// Higher than the baseline but within tolerance, or not a gated kind.
    Within,
    /// Higher than the baseline beyond tolerance — fails the gate.
    Regressed,
    /// Present in the baseline, absent from the current run — fails the
    /// gate for gated kinds (instrumentation loss).
    Missing,
    /// Absent from the baseline (informational).
    New,
}

/// One compared value in a [`DiffReport`].
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Metric name.
    pub name: String,
    /// Which value of the metric this row compares.
    pub kind: Kind,
    /// Baseline value (`None` when new).
    pub base: Option<u64>,
    /// Current value (`None` when missing).
    pub current: Option<u64>,
    /// Outcome.
    pub status: Status,
}

impl DiffEntry {
    /// Percent change vs the baseline; `None` when either side is absent
    /// or the baseline is 0 with a non-zero current (unbounded growth).
    pub fn pct_change(&self) -> Option<f64> {
        match (self.base, self.current) {
            (Some(0), Some(0)) => Some(0.0),
            (Some(0), Some(_)) => None,
            (Some(b), Some(c)) => Some((c as f64 - b as f64) / b as f64 * 100.0),
            _ => None,
        }
    }
}

/// Tolerances and scope for [`diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Maximum tolerated increase, in percent, for gated values.
    pub max_regress_pct: f64,
    /// Also gate span p50/p95 wall-clock estimates (off by default —
    /// machine-dependent).
    pub include_timings: bool,
    /// Also gate the timing-dependent namespaces (`engine.`, `pool.`,
    /// `serve.`, `cache.`, `loadgen.`, `series.`, `maint.`) that are
    /// exempt by default. Meant for baselines produced by a
    /// *deterministic* driver (e.g. the churn bench), or committed as
    /// provable upper bounds — not for live serving runs.
    pub include_exempt: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            max_regress_pct: 10.0,
            include_timings: false,
            include_exempt: false,
        }
    }
}

/// The result of comparing a current [`MetricSet`] against a baseline.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// All compared values, in (name, kind) order.
    pub entries: Vec<DiffEntry>,
    /// The options the comparison ran with.
    pub options: DiffOptions,
}

impl DiffReport {
    /// Whether any gated value regressed (the CI failure condition).
    pub fn regressed(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.status, Status::Regressed | Status::Missing))
    }

    /// The failing entries.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e.status, Status::Regressed | Status::Missing))
    }

    /// Human-readable table: every changed or failing row, then a verdict
    /// line (`ok:` or `REGRESSED:`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut shown = 0usize;
        for e in &self.entries {
            if e.status == Status::Unchanged {
                continue;
            }
            shown += 1;
            let fmt_side = |v: Option<u64>| match v {
                Some(v) => v.to_string(),
                None => "-".to_string(),
            };
            let pct = match e.pct_change() {
                Some(p) => format!("{p:+.1}%"),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "  {:<10} {:<12} {:<40} {:>14} -> {:<14} {:>9}\n",
                match e.status {
                    Status::Improved => "improved",
                    Status::Within => "within",
                    Status::Regressed => "REGRESSED",
                    Status::Missing => "MISSING",
                    Status::New => "new",
                    Status::Unchanged => unreachable!(),
                },
                e.kind.label(),
                e.name,
                fmt_side(e.base),
                fmt_side(e.current),
                pct,
            ));
        }
        if shown == 0 {
            out.push_str("  (no differences)\n");
        }
        let unchanged = self.entries.len() - shown;
        let failures = self.regressions().count();
        if failures > 0 {
            out.push_str(&format!(
                "REGRESSED: {failures} gated value(s) exceed +{:.1}% ({unchanged} unchanged)\n",
                self.options.max_regress_pct
            ));
        } else {
            out.push_str(&format!(
                "ok: no gated value exceeds +{:.1}% ({unchanged} unchanged)\n",
                self.options.max_regress_pct
            ));
        }
        out
    }
}

/// Whether `(name, kind)` is covered by the gate under `opts`.
fn gated(name: &str, kind: Kind, opts: &DiffOptions) -> bool {
    // Exempt the timing-dependent namespaces, matching
    // MetricSet::deterministic_counters: execution shape (engine/pool)
    // and arrival timing (serve/cache/loadgen/series/maint). The
    // `include_exempt` opt-in gates them anyway — see its docs.
    const EXEMPT: [&str; 7] = [
        "engine.", "pool.", "serve.", "cache.", "loadgen.", "series.", "maint.",
    ];
    if !opts.include_exempt && EXEMPT.iter().any(|p| name.starts_with(p)) {
        return false;
    }
    match kind {
        Kind::Counter | Kind::Gauge | Kind::SpanCount => true,
        Kind::SpanP50 | Kind::SpanP95 => opts.include_timings,
    }
}

/// Classify one gated value pair under the tolerance.
fn classify(base: u64, current: u64, gate: bool, pct: f64) -> Status {
    use std::cmp::Ordering;
    match current.cmp(&base) {
        Ordering::Equal => Status::Unchanged,
        Ordering::Less => Status::Improved,
        Ordering::Greater => {
            let within = base > 0 && (current as f64 - base as f64) / base as f64 * 100.0 <= pct;
            if !gate || within {
                Status::Within
            } else {
                Status::Regressed
            }
        }
    }
}

/// Compare `current` against `base` under `opts`.
pub fn diff(base: &MetricSet, current: &MetricSet, opts: &DiffOptions) -> DiffReport {
    let mut entries = Vec::new();
    let mut push = |name: &str, kind: Kind, b: Option<u64>, c: Option<u64>| {
        let gate = gated(name, kind, opts);
        let status = match (b, c) {
            (Some(b), Some(c)) => classify(b, c, gate, opts.max_regress_pct),
            (Some(_), None) => {
                if gate {
                    Status::Missing
                } else {
                    Status::Within
                }
            }
            (None, Some(_)) => Status::New,
            (None, None) => return,
        };
        entries.push(DiffEntry {
            name: name.to_string(),
            kind,
            base: b,
            current: c,
            status,
        });
    };

    fn merged_names<'a>(
        b: impl Iterator<Item = &'a str>,
        c: impl Iterator<Item = &'a str>,
    ) -> Vec<String> {
        let mut v: Vec<String> = b.chain(c).map(str::to_string).collect();
        v.sort();
        v.dedup();
        v
    }

    for name in merged_names(
        base.counters().map(|(k, _)| k),
        current.counters().map(|(k, _)| k),
    ) {
        let b = base.counters().find(|(k, _)| *k == name).map(|(_, v)| v);
        let c = current.counters().find(|(k, _)| *k == name).map(|(_, v)| v);
        push(&name, Kind::Counter, b, c);
    }
    for name in merged_names(
        base.gauges().map(|(k, _)| k),
        current.gauges().map(|(k, _)| k),
    ) {
        push(&name, Kind::Gauge, base.gauge(&name), current.gauge(&name));
    }
    for name in merged_names(
        base.spans().map(|(k, _)| k),
        current.spans().map(|(k, _)| k),
    ) {
        let b = base.span(&name);
        let c = current.span(&name);
        push(
            &name,
            Kind::SpanCount,
            b.map(|s| s.count),
            c.map(|s| s.count),
        );
        push(
            &name,
            Kind::SpanP50,
            b.map(|s| s.quantile_ns(0.50)),
            c.map(|s| s.quantile_ns(0.50)),
        );
        push(
            &name,
            Kind::SpanP95,
            b.map(|s| s.quantile_ns(0.95)),
            c.map(|s| s.quantile_ns(0.95)),
        );
    }
    DiffReport {
        entries,
        options: *opts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(
        counters: &[(&str, u64)],
        gauges: &[(&str, u64)],
        spans: &[(&str, &[u64])],
    ) -> MetricSet {
        let mut m = MetricSet::new();
        for &(k, v) in counters {
            m.add(k, v);
        }
        for &(k, v) in gauges {
            m.set_gauge(k, v);
        }
        for &(k, obs) in spans {
            for &ns in obs {
                m.observe_ns(k, ns);
            }
        }
        m
    }

    #[test]
    fn identical_sets_pass_at_zero_tolerance() {
        let m = set(
            &[("funnel.filtered", 100)],
            &[("mem.index.bytes", 4096)],
            &[("query.filter", &[100, 200, 300])],
        );
        let report = diff(
            &m,
            &m.clone(),
            &DiffOptions {
                max_regress_pct: 0.0,
                include_timings: true,
                include_exempt: false,
            },
        );
        assert!(!report.regressed(), "{}", report.render_text());
        assert!(report.entries.iter().all(|e| e.status == Status::Unchanged));
    }

    #[test]
    fn counter_growth_beyond_tolerance_fails() {
        let base = set(&[("funnel.filtered", 100)], &[], &[]);
        let worse = set(&[("funnel.filtered", 125)], &[], &[]);
        let opts = DiffOptions {
            max_regress_pct: 10.0,
            include_timings: false,
            include_exempt: false,
        };
        let report = diff(&base, &worse, &opts);
        assert!(report.regressed());
        assert_eq!(report.regressions().count(), 1);
        // Within tolerance passes.
        let slightly = set(&[("funnel.filtered", 105)], &[], &[]);
        assert!(!diff(&base, &slightly, &opts).regressed());
        // Decrease never fails, even at zero tolerance.
        let better = set(&[("funnel.filtered", 10)], &[], &[]);
        let strict = DiffOptions {
            max_regress_pct: 0.0,
            include_timings: false,
            include_exempt: false,
        };
        assert!(!diff(&base, &better, &strict).regressed());
    }

    #[test]
    fn gauge_increase_fails_and_decrease_passes() {
        let base = set(&[], &[("mem.index.bytes", 1000)], &[]);
        let opts = DiffOptions {
            max_regress_pct: 10.0,
            include_timings: false,
            include_exempt: false,
        };
        assert!(diff(&base, &set(&[], &[("mem.index.bytes", 1200)], &[]), &opts).regressed());
        assert!(!diff(&base, &set(&[], &[("mem.index.bytes", 500)], &[]), &opts).regressed());
    }

    #[test]
    fn engine_namespace_is_exempt() {
        let base = set(
            &[("engine.workers", 1)],
            &[],
            &[("engine.worker_busy", &[10])],
        );
        let worse = set(
            &[("engine.workers", 64)],
            &[],
            &[("engine.worker_busy", &[10, 10, 10, 10])],
        );
        let opts = DiffOptions {
            max_regress_pct: 0.0,
            include_timings: true,
            include_exempt: false,
        };
        assert!(!diff(&base, &worse, &opts).regressed());
        // Even disappearing engine metrics don't fail.
        assert!(!diff(&base, &MetricSet::new(), &opts).regressed());
    }

    #[test]
    fn serving_namespaces_are_exempt() {
        // serve./cache./loadgen. depend on arrival timing, like engine.*.
        let base = set(
            &[("serve.shed", 0), ("cache.hit", 100), ("loadgen.ok", 50)],
            &[],
            &[("serve.request", &[10])],
        );
        let worse = set(
            &[("serve.shed", 999), ("cache.hit", 1), ("loadgen.ok", 1)],
            &[],
            &[("serve.request", &[10, 10, 10])],
        );
        let opts = DiffOptions {
            max_regress_pct: 0.0,
            include_timings: true,
            include_exempt: false,
        };
        assert!(!diff(&base, &worse, &opts).regressed());
        assert!(!diff(&base, &MetricSet::new(), &opts).regressed());
    }

    #[test]
    fn pool_namespace_is_exempt() {
        let base = set(&[("pool.tasks", 1)], &[], &[("pool.worker_busy", &[10])]);
        let worse = set(
            &[
                ("pool.tasks", 640),
                ("pool.steal_or_queue_wait_ns", 1 << 30),
            ],
            &[],
            &[("pool.worker_busy", &[10, 10, 10, 10])],
        );
        let opts = DiffOptions {
            max_regress_pct: 0.0,
            include_timings: true,
            include_exempt: false,
        };
        assert!(!diff(&base, &worse, &opts).regressed());
        assert!(!diff(&base, &MetricSet::new(), &opts).regressed());
    }

    #[test]
    fn timings_gated_only_on_request() {
        let base = set(&[], &[], &[("query.verify", &[100, 100, 100])]);
        // Same count, much slower observations.
        let slower = set(&[], &[], &[("query.verify", &[100_000, 100_000, 100_000])]);
        let lenient = DiffOptions {
            max_regress_pct: 10.0,
            include_timings: false,
            include_exempt: false,
        };
        assert!(!diff(&base, &slower, &lenient).regressed());
        let timed = DiffOptions {
            max_regress_pct: 10.0,
            include_timings: true,
            include_exempt: false,
        };
        let report = diff(&base, &slower, &timed);
        assert!(report.regressed());
        assert!(report
            .regressions()
            .any(|e| matches!(e.kind, Kind::SpanP50 | Kind::SpanP95)));
    }

    #[test]
    fn missing_gated_entry_fails_and_new_entry_does_not() {
        let base = set(&[("funnel.queries", 3)], &[], &[]);
        let report = diff(&base, &MetricSet::new(), &DiffOptions::default());
        assert!(report.regressed());
        assert_eq!(report.regressions().next().unwrap().status, Status::Missing);
        // New metric in current only: informational.
        let report = diff(&MetricSet::new(), &base, &DiffOptions::default());
        assert!(!report.regressed());
        assert_eq!(report.entries[0].status, Status::New);
    }

    #[test]
    fn zero_baseline_growth_is_a_regression() {
        let base = set(&[("funnel.answers", 0)], &[], &[]);
        let grown = set(&[("funnel.answers", 5)], &[], &[]);
        let report = diff(&base, &grown, &DiffOptions::default());
        assert!(report.regressed());
        assert_eq!(report.entries[0].pct_change(), None);
    }

    #[test]
    fn render_text_names_the_verdict() {
        let base = set(&[("funnel.filtered", 100)], &[], &[]);
        let worse = set(&[("funnel.filtered", 300)], &[], &[]);
        let report = diff(&base, &worse, &DiffOptions::default());
        let text = report.render_text();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("funnel.filtered"), "{text}");
        assert!(text.contains("+200.0%"), "{text}");
        let ok = diff(&base, &base.clone(), &DiffOptions::default()).render_text();
        assert!(ok.starts_with("  (no differences)"), "{ok}");
        assert!(ok.contains("ok:"), "{ok}");
    }
}
