//! Stage-level observability for the TreePi pipeline.
//!
//! The paper's evaluation (§6, Figures 9–13) decomposes query cost into a
//! filter/prune/verify funnel; this crate is the measurement layer that
//! makes the same decomposition available at runtime: **spans** (RAII wall
//! timers with log-bucketed latency histograms), **counters** (monotonic
//! event tallies), and a thread-safe [`Registry`] that aggregates them.
//!
//! Design constraints (see DESIGN.md, "Observability"):
//!
//! - **No locks on the fast path.** Work records into a worker-owned
//!   [`Shard`] (interior mutability, `!Sync`); shards are merged into the
//!   registry's aggregate once, at batch end ([`Registry::absorb`]).
//! - **No globals.** Everything flows through explicit `&Registry` /
//!   `&Shard` handles; a disabled handle ([`Registry::disabled`],
//!   [`Shard::disabled`]) makes every record call a single branch.
//! - **Deterministic aggregation.** Merging is commutative integer
//!   addition, so counter totals are bit-identical for any thread count or
//!   scheduling order. By convention, names under the `engine.` prefix
//!   describe *execution shape* (worker counts, busy time) and are exempt;
//!   [`MetricSet::deterministic_counters`] applies the convention.
//! - **Stable rendering.** Metric names sort lexicographically in both the
//!   human-readable text table and the versioned JSON schema
//!   ([`JSON_SCHEMA`]); see EXPERIMENTS.md for the schema reference.
//!
//! Compile-time off switch: building with the `off` feature pins
//! [`COMPILED_IN`] to `false`, so even [`Registry::new`] yields a disabled
//! registry and the instrumented hot paths cost one predictable branch.
//!
//! ```
//! let registry = obs::Registry::new();
//! let shard = registry.shard();
//! {
//!     let _span = shard.span("query.filter");
//!     shard.add("funnel.filtered", 42);
//! } // span records its elapsed time on drop
//! registry.absorb(shard);
//! let snap = registry.snapshot();
//! # if obs::COMPILED_IN {
//! assert_eq!(snap.counter("funnel.filtered"), 42);
//! assert_eq!(snap.span("query.filter").unwrap().count, 1);
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod diff;
pub mod json;
pub mod prom;
pub mod series;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Whether instrumentation is compiled in (`false` under the `off` feature).
pub const COMPILED_IN: bool = !cfg!(feature = "off");

/// Version tag embedded in every JSON rendering of a [`MetricSet`].
pub const JSON_SCHEMA: &str = "treepi.obs/v1";

/// Linear sub-buckets per power of two in the HDR-style log-linear
/// histogram layout (see [`BUCKETS`]).
pub const SUB_BUCKETS: usize = 16;
/// `log2(SUB_BUCKETS)` — the number of mantissa bits each bucket resolves.
const SUB_BITS: usize = 4;
/// Largest fully resolved power of two: values up to `2^(K_MAX+1)` ns
/// (~78 hours) are bucketed with full resolution; beyond that they clamp
/// into the last bucket.
const K_MAX: usize = 47;

/// Number of latency buckets in the HDR-style **log-linear** layout:
/// values below [`SUB_BUCKETS`] ns get one exact bucket each, and every
/// power-of-two range `[2^k, 2^(k+1))` above that is split into
/// [`SUB_BUCKETS`] equal-width linear sub-buckets. A bucket's width is
/// therefore at most `1/16` of its lower bound, which caps the relative
/// error of histogram quantile estimates at 6.25% (the old pure-log₂
/// layout was up to 2× off). The range still reaches ~78 hours, far
/// beyond any span this codebase times.
pub const BUCKETS: usize = SUB_BUCKETS + (K_MAX - SUB_BITS + 1) * SUB_BUCKETS;

/// Bucket index for a nanosecond value.
#[inline]
pub(crate) fn bucket_of(ns: u64) -> usize {
    if ns < SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let k = 63 - ns.leading_zeros() as usize; // ≥ SUB_BITS here
    if k > K_MAX {
        return BUCKETS - 1;
    }
    let sub = ((ns >> (k - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + (k - SUB_BITS) * SUB_BUCKETS + sub
}

/// Upper bound (ns, inclusive) of bucket `i` — the value quantile
/// estimates report, and the canonical bucket identifier in the JSON
/// encoding. `bucket_of(bucket_upper(i)) == i` for every valid `i`, which
/// is what lets [`json::parse_metric_set`] invert the encoding.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let j = i - SUB_BUCKETS;
    let k = SUB_BITS + j / SUB_BUCKETS;
    let sub = (j % SUB_BUCKETS) as u64;
    (1u64 << k) + (sub + 1) * (1u64 << (k - SUB_BITS)) - 1
}

/// Aggregated statistics of one named span: invocation count, total wall
/// time, min/max, and a log-linear-bucketed latency histogram (see
/// [`BUCKETS`] for the layout and its 6.25% quantile error bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of recorded invocations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration (ns); 0 when `count == 0`.
    pub min_ns: u64,
    /// Longest recorded duration (ns).
    pub max_ns: u64,
    /// Log-linear histogram; `buckets[i]` counts durations in bucket `i`.
    pub buckets: [u64; BUCKETS],
}

impl Default for SpanStat {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl SpanStat {
    /// Record one duration.
    pub fn observe_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Merge another span's statistics into this one (commutative).
    pub fn merge(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Mean duration in nanoseconds (0 when never recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Histogram quantile estimate: the upper bound of the smallest bucket
    /// holding at least a `p` fraction of samples (`0.0 ≤ p ≤ 1.0`). An
    /// upper bound by construction — never under-reports the tail — and,
    /// because each log-linear bucket is at most `1/16` of its lower bound
    /// wide, never more than 6.25% above the exact sample quantile.
    pub fn quantile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Minimum as reported (0 instead of the `u64::MAX` sentinel).
    pub fn min_ns_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }
}

/// A plain, unsynchronized collection of named counters and span stats —
/// the payload of a [`Shard`] and the aggregate held by a [`Registry`].
///
/// Names sort lexicographically (BTreeMap), which is what makes text and
/// JSON renderings stable across runs and thread counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
}

impl MetricSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.spans.is_empty()
    }

    /// Add `n` to counter `name` (created at 0 on first use).
    pub fn add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Record a duration under span `name`.
    pub fn observe_ns(&mut self, name: &str, ns: u64) {
        match self.spans.get_mut(name) {
            Some(s) => s.observe_ns(ns),
            None => {
                let mut s = SpanStat::default();
                s.observe_ns(ns);
                self.spans.insert(name.to_string(), s);
            }
        }
    }

    /// Set gauge `name` to `v` — a point-in-time *level* (bytes held, peak
    /// bytes, structure sizes), as opposed to a monotonically accumulating
    /// counter. Setting overwrites; merging keeps the max (see [`Self::merge`]).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                self.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Merge `other` into `self` (commutative and associative, so the merge
    /// order of per-worker shards cannot change any total). Counters and
    /// span histograms add; gauges keep the **max** of both sides, so level
    /// readings like peak memory survive shard merges as true high-water
    /// marks.
    pub fn merge(&mut self, other: &MetricSet) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            match self.gauges.get_mut(k) {
                Some(mine) => *mine = (*mine).max(*v),
                None => {
                    self.gauges.insert(k.clone(), *v);
                }
            }
        }
        for (k, s) in &other.spans {
            match self.spans.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.spans.insert(k.clone(), s.clone());
                }
            }
        }
    }

    /// Current value of counter `name` (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// All gauges, name-sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Statistics of span `name`, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.get(name)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All spans, name-sorted.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &SpanStat)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The counters covered by the determinism contract: everything except
    /// the `engine.` and `pool.` namespaces, whose values describe
    /// execution shape (worker counts, scheduling, pool busy/park time)
    /// and legitimately vary with `--threads` — and the `serve.`,
    /// `cache.`, `loadgen.`, `series.`, and `maint.` namespaces, whose
    /// values depend on arrival timing (batch boundaries, cache hits vs.
    /// in-flight misses, shed decisions, sampler ring evictions, how many
    /// queued ops each apply batch happens to fold together). Totals
    /// here must be bit-identical at any thread count.
    pub fn deterministic_counters(&self) -> BTreeMap<String, u64> {
        const EXEMPT: [&str; 7] = [
            "engine.", "pool.", "serve.", "cache.", "loadgen.", "series.", "maint.",
        ];
        self.counters
            .iter()
            .filter(|(k, _)| !EXEMPT.iter().any(|p| k.starts_with(p)))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Human-readable rendering: a counter table then a span table, both
    /// name-sorted.
    pub fn render_text(&self) -> String {
        fn dur(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.2}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<w$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<w$}  {v}\n"));
            }
        }
        if !self.spans.is_empty() {
            let w = self.spans.keys().map(|k| k.len()).max().unwrap_or(0).max(4);
            out.push_str(&format!(
                "spans:\n  {:<w$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                "name", "count", "total", "mean", "p50", "p95", "max"
            ));
            for (k, s) in &self.spans {
                out.push_str(&format!(
                    "  {k:<w$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                    s.count,
                    dur(s.total_ns),
                    dur(s.mean_ns()),
                    dur(s.quantile_ns(0.50)),
                    dur(s.quantile_ns(0.95)),
                    dur(s.max_ns),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Stable JSON rendering (schema [`JSON_SCHEMA`]; documented with a
    /// worked example in EXPERIMENTS.md). Counter values and span counts
    /// are deterministic; `*_ns` fields are wall-clock measurements and are
    /// not. Histogram buckets are emitted sparsely as
    /// `[bucket_upper_ns, count]` pairs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": {},\n",
            json::escape_string(JSON_SCHEMA)
        ));
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json::escape_string(k)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json::escape_string(k)));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = s
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(b, &c)| format!("[{}, {c}]", bucket_upper(b)))
                .collect();
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"buckets\": [{}]}}",
                json::escape_string(k),
                s.count,
                s.total_ns,
                s.min_ns_or_zero(),
                s.max_ns,
                s.mean_ns(),
                s.quantile_ns(0.50),
                s.quantile_ns(0.95),
                buckets.join(", ")
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// A worker-owned metric shard: interior mutability, no synchronization,
/// `!Sync` by construction. Create one per worker from
/// [`Registry::shard`] (or free-standing via [`Shard::detached`]), record
/// into it lock-free, and hand it back with [`Registry::absorb`].
#[derive(Debug)]
pub struct Shard {
    enabled: bool,
    set: RefCell<MetricSet>,
    trace: Option<trace::TraceShard>,
}

impl Shard {
    /// A free-standing shard, not tied to a registry. Enabled shards can be
    /// merged into another shard ([`Shard::merge`]) or absorbed later.
    pub fn detached(enabled: bool) -> Self {
        Self {
            enabled: enabled && COMPILED_IN,
            set: RefCell::new(MetricSet::new()),
            trace: None,
        }
    }

    /// A shard that additionally buffers trace events (only handed out by a
    /// tracing [`Registry`]).
    fn traced(enabled: bool, trace: Option<trace::TraceShard>) -> Self {
        Self {
            enabled: enabled && COMPILED_IN,
            set: RefCell::new(MetricSet::new()),
            trace,
        }
    }

    /// Whether this shard buffers trace events.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Attach `q` (a query's batch position) to subsequently traced events;
    /// `None` detaches. A single branch when tracing is off.
    #[inline]
    pub fn set_trace_query(&self, q: Option<u64>) {
        if let Some(t) = &self.trace {
            t.set_query(q);
        }
    }

    /// Record a complete trace event retroactively: `name` ran from `start`
    /// for `dur`. Used by pipeline sites that measure stage durations
    /// themselves instead of holding a [`SpanGuard`]. A single branch when
    /// tracing is off.
    #[inline]
    pub fn trace_complete(&self, name: &str, start: Instant, dur: Duration) {
        if let Some(t) = &self.trace {
            t.push(name, start, dur);
        }
    }

    /// A permanently disabled shard: every record call is one branch.
    pub fn disabled() -> Self {
        Self::detached(false)
    }

    /// Whether this shard records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// An empty shard with the same enablement (for handing to a helper
    /// thread; merge it back with [`Shard::merge`]). Forks never trace —
    /// the per-query timeline belongs to the worker that owns the query.
    pub fn fork(&self) -> Shard {
        Shard::detached(self.enabled)
    }

    /// Merge a forked shard's metrics into this one.
    pub fn merge(&self, child: Shard) {
        if self.enabled {
            self.set.borrow_mut().merge(&child.set.into_inner());
        }
    }

    /// Add `n` to counter `name`.
    #[inline]
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled {
            self.set.borrow_mut().add(name, n);
        }
    }

    /// Set gauge `name` to `v` (see [`MetricSet::set_gauge`]).
    #[inline]
    pub fn set_gauge(&self, name: &str, v: u64) {
        if self.enabled {
            self.set.borrow_mut().set_gauge(name, v);
        }
    }

    /// Record `d` under span `name`.
    #[inline]
    pub fn observe(&self, name: &str, d: Duration) {
        if self.enabled {
            self.set
                .borrow_mut()
                .observe_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Start an RAII span: the guard records the elapsed wall time under
    /// `name` when dropped. Disabled shards skip even the clock read.
    #[inline]
    pub fn span<'a>(&'a self, name: &'a str) -> SpanGuard<'a> {
        SpanGuard {
            shard: self,
            name,
            start: self.enabled.then(Instant::now),
        }
    }

    /// Take the recorded metrics, leaving the shard empty.
    pub fn take(&self) -> MetricSet {
        self.set.take()
    }

    /// Clone the recorded metrics without draining the shard. Used by live
    /// snapshots (the serve `STATS` op) that must observe mid-run state
    /// while the owning loop keeps recording into the same shard.
    pub fn peek(&self) -> MetricSet {
        self.set.borrow().clone()
    }

    /// Consume the shard, yielding its metrics.
    pub fn into_set(self) -> MetricSet {
        self.set.into_inner()
    }

    /// Consume the shard, yielding metrics and the trace buffer (if any).
    fn into_parts(self) -> (MetricSet, Option<trace::TraceShard>) {
        (self.set.into_inner(), self.trace)
    }
}

/// RAII span timer returned by [`Shard::span`]; records on drop.
#[must_use = "a span guard records when dropped; binding it to _ drops it immediately"]
pub struct SpanGuard<'a> {
    shard: &'a Shard,
    name: &'a str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            self.shard.observe(self.name, elapsed);
            self.shard.trace_complete(self.name, start, elapsed);
        }
    }
}

/// A shared atomic tally for the rare cross-thread count where no shard is
/// in scope (e.g. a scheduler statistic owned by no single worker). Record
/// its final value into a shard or registry at batch end.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The thread-safe aggregation point: hands out [`Shard`]s and merges them
/// back. The only lock is taken in [`Registry::absorb`]/[`Registry::snapshot`]
/// — once per worker per batch, never per event.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: bool,
    agg: Mutex<MetricSet>,
    trace: Option<trace::TraceSink>,
}

impl Registry {
    /// An enabled registry (disabled anyway when compiled with `off`).
    pub fn new() -> Self {
        Self {
            enabled: COMPILED_IN,
            agg: Mutex::new(MetricSet::new()),
            trace: None,
        }
    }

    /// An enabled registry that additionally collects a trace timeline:
    /// shards it hands out buffer begin/end events for every span (and the
    /// retroactive pipeline-stage records, [`Shard::trace_complete`]),
    /// merged at absorb time and exported via [`Self::drain_trace`]. Under
    /// the `off` feature this is [`Registry::disabled`] — tracing compiles
    /// out with the rest of the instrumentation.
    pub fn with_tracing() -> Self {
        Self {
            enabled: COMPILED_IN,
            agg: Mutex::new(MetricSet::new()),
            trace: COMPILED_IN.then(trace::TraceSink::new),
        }
    }

    /// A disabled registry: shards it hands out record nothing, absorb is a
    /// no-op, snapshots are empty.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            agg: Mutex::new(MetricSet::new()),
            trace: None,
        }
    }

    /// Whether metrics are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether a trace timeline is being collected.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// A fresh shard with this registry's enablement (and, when tracing, a
    /// trace buffer on a fresh lane).
    pub fn shard(&self) -> Shard {
        match &self.trace {
            Some(sink) if self.enabled => Shard::traced(true, Some(sink.shard())),
            _ => Shard::detached(self.enabled),
        }
    }

    /// Merge a shard's metrics (and trace events, if any) into the
    /// aggregate.
    pub fn absorb(&self, shard: Shard) {
        if self.enabled {
            let (set, shard_trace) = shard.into_parts();
            if !set.is_empty() {
                self.agg.lock().expect("obs registry poisoned").merge(&set);
            }
            if let (Some(sink), Some(t)) = (&self.trace, shard_trace) {
                sink.absorb(t);
            }
        }
    }

    /// Add directly to an aggregate counter (takes the lock — cold paths
    /// only; hot paths go through a shard).
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled {
            self.agg.lock().expect("obs registry poisoned").add(name, n);
        }
    }

    /// Set an aggregate gauge (takes the lock — cold paths only; see
    /// [`MetricSet::set_gauge`]).
    pub fn set_gauge(&self, name: &str, v: u64) {
        if self.enabled {
            self.agg
                .lock()
                .expect("obs registry poisoned")
                .set_gauge(name, v);
        }
    }

    /// Take the collected trace timeline (empty when not tracing), sorted
    /// by start offset.
    pub fn drain_trace(&self) -> Vec<trace::TraceEvent> {
        self.trace
            .as_ref()
            .map(trace::TraceSink::drain)
            .unwrap_or_default()
    }

    /// A copy of the current aggregate.
    pub fn snapshot(&self) -> MetricSet {
        self.agg.lock().expect("obs registry poisoned").clone()
    }

    /// Take the aggregate, resetting the registry to empty.
    pub fn drain(&self) -> MetricSet {
        std::mem::take(&mut *self.agg.lock().expect("obs registry poisoned"))
    }
}

/// Canonical metric names shared across the pipeline layers, so treepi and
/// the gindex baseline render directly comparable stage breakdowns.
pub mod names {
    /// Query partition stage (δ randomized partition runs + SF assembly).
    pub const SPAN_PARTITION: &str = "query.partition";
    /// Query filter stage (support-set intersection, Algorithm 1).
    pub const SPAN_FILTER: &str = "query.filter";
    /// Center-distance pruning stage (Algorithm 2).
    pub const SPAN_PRUNE: &str = "query.prune";
    /// Neighborhood-signature kill stage (between filter and prune).
    pub const SPAN_SIG_FILTER: &str = "query.sig_filter";
    /// Verification stage (Algorithm 3 / naive isomorphism).
    pub const SPAN_VERIFY: &str = "query.verify";
    /// The five pipeline stages in funnel order.
    pub const PIPELINE_SPANS: [&str; 5] = [
        SPAN_PARTITION,
        SPAN_FILTER,
        SPAN_SIG_FILTER,
        SPAN_PRUNE,
        SPAN_VERIFY,
    ];

    /// Queries processed.
    pub const QUERIES: &str = "funnel.queries";
    /// Candidates surviving the filter stage (Σ |P_q|).
    pub const FILTERED: &str = "funnel.filtered";
    /// Candidates surviving CDC pruning (Σ |P'_q|).
    pub const PRUNED: &str = "funnel.pruned";
    /// Candidates killed by the neighborhood-signature filter before
    /// verification ever ran (a subset of `funnel.pruned` survivors).
    pub const SIG_KILLED: &str = "funnel.sig_killed";
    /// Exact answers (Σ |D_q|).
    pub const ANSWERS: &str = "funnel.answers";
    /// Queries short-circuited by a missing feature.
    pub const MISSING_FEATURE: &str = "funnel.missing_feature";

    /// Gauge: bytes currently live per the tracking allocator.
    pub const GAUGE_ALLOC_LIVE: &str = "mem.alloc.live_bytes";
    /// Gauge: peak live bytes per the tracking allocator.
    pub const GAUGE_ALLOC_PEAK: &str = "mem.alloc.peak_bytes";
    /// Gauge: cumulative bytes ever allocated.
    pub const GAUGE_ALLOC_TOTAL: &str = "mem.alloc.total_bytes";
    /// Gauge: cumulative allocation calls.
    pub const GAUGE_ALLOC_COUNT: &str = "mem.alloc.allocations";

    /// Gauge: total estimated heap bytes of the TreePi index.
    pub const GAUGE_INDEX_TOTAL: &str = "mem.index.bytes";
    /// Gauge: heap bytes of the indexed graph database.
    pub const GAUGE_INDEX_DB: &str = "mem.index.db_bytes";
    /// Gauge: heap bytes of the feature trees + canonical codes.
    pub const GAUGE_INDEX_FEATURES: &str = "mem.index.features_bytes";
    /// Gauge: heap bytes of the per-feature support sets.
    pub const GAUGE_INDEX_SUPPORTS: &str = "mem.index.supports_bytes";
    /// Gauge: heap bytes of the center-position tables.
    pub const GAUGE_INDEX_CENTERS: &str = "mem.index.centers_bytes";
    /// Gauge: heap bytes of the per-vertex neighborhood signatures.
    pub const GAUGE_INDEX_SIGS: &str = "mem.index.sigs_bytes";
    /// Gauge: heap bytes of the canonical-code trie.
    pub const GAUGE_INDEX_TRIE: &str = "mem.index.trie_bytes";
    /// Gauge: heap bytes still held by removed (tombstoned) graphs —
    /// reclaimable by a rebuild, excluded from `mem.index.bytes`.
    pub const GAUGE_INDEX_TOMBSTONES: &str = "mem.index.tombstones_bytes";

    /// Gauge: total estimated heap bytes of the gIndex baseline.
    pub const GAUGE_GINDEX_TOTAL: &str = "mem.gindex.bytes";
    /// Gauge: heap bytes of the gIndex fragment set (graphs + codes).
    pub const GAUGE_GINDEX_FRAGMENTS: &str = "mem.gindex.fragments_bytes";
    /// Gauge: heap bytes of the gIndex code→fragment lookup map.
    pub const GAUGE_GINDEX_LOOKUP: &str = "mem.gindex.lookup_bytes";

    // The serving front end (`serve.*` / `cache.*`) and the load
    // generator (`loadgen.*`). All three namespaces depend on arrival
    // timing and are exempt from the determinism contract and the
    // metrics-diff gate, like `engine.*` / `pool.*`.

    /// Counter: request frames decoded by the server.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Counter: query requests (cache hits, queued, and shed included).
    pub const SERVE_QUERIES: &str = "serve.queries";
    /// Counter: queries refused with a Busy response (admission queue
    /// full — the backpressure path).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Counter: micro-batches dispatched to the engine.
    pub const SERVE_BATCHES: &str = "serve.batches";
    /// Counter: queries executed inside micro-batches.
    pub const SERVE_BATCHED: &str = "serve.batched_queries";
    /// Counter: maintenance operations (insert/remove) applied.
    pub const SERVE_MAINTENANCE: &str = "serve.maintenance";
    /// Counter: malformed frames / protocol errors answered with `E`.
    pub const SERVE_ERRORS: &str = "serve.errors";
    /// Counter: connections dropped because the peer stopped reading and
    /// its write buffer hit the cap (slow-consumer protection).
    pub const SERVE_SLOW_CONSUMER_DROP: &str = "serve.slow_consumer_drop";
    /// Counter: queries whose verify stage exceeded the `--slow-query-us`
    /// threshold and were captured into the slow-query log.
    pub const SERVE_SLOW_QUERIES: &str = "serve.slow_queries";
    /// Counter: `STATS` admin snapshots served.
    pub const SERVE_STATS: &str = "serve.stats";
    /// Counter: connections dropped for a wire-protocol violation (an
    /// oversized declared frame length).
    pub const SERVE_PROTO_ERROR: &str = "serve.proto_error";
    /// Counter: HTTP monitoring requests served (`/metrics`, `/healthz`,
    /// `/slowz`, and error responses alike).
    pub const SERVE_HTTP_REQUESTS: &str = "serve.http_requests";
    /// Counter: event-loop iterations whose non-poll work exceeded the
    /// stall threshold (watchdog trips).
    pub const SERVE_LOOP_STALLS: &str = "serve.loop.stall_count";
    /// Gauge: longest observed event-loop stall, in microseconds.
    pub const GAUGE_SERVE_LOOP_MAX_STALL: &str = "serve.loop.max_stall_us";
    /// Span: admission-to-response latency of one served query.
    pub const SPAN_SERVE_REQUEST: &str = "serve.request";
    /// Span: wall time of one engine micro-batch execution.
    pub const SPAN_SERVE_BATCH: &str = "serve.batch_exec";
    /// Span: admission-to-dispatch wait in the bounded queue.
    pub const SPAN_SERVE_QUEUE_WAIT: &str = "serve.queue_wait";
    /// Span: batch residence time minus the query's own execution time —
    /// the cost of waiting on co-batched siblings.
    pub const SPAN_SERVE_BATCH_WAIT: &str = "serve.batch_wait";
    /// Span: the query's own pipeline execution time inside its batch
    /// (sum of the four stage durations).
    pub const SPAN_SERVE_EXEC_SHARE: &str = "serve.exec_share";
    /// Span: response-enqueued-to-socket-flushed latency.
    pub const SPAN_SERVE_WRITE_WAIT: &str = "serve.write_wait";
    /// The four per-request latency-decomposition histograms, in
    /// pipeline order (queue → batch → execute → write).
    pub const DECOMPOSITION_SPANS: [&str; 4] = [
        SPAN_SERVE_QUEUE_WAIT,
        SPAN_SERVE_BATCH_WAIT,
        SPAN_SERVE_EXEC_SHARE,
        SPAN_SERVE_WRITE_WAIT,
    ];
    /// Gauge: peak depth the admission queue ever reached (≤ queue cap —
    /// the bounded-memory witness).
    pub const GAUGE_SERVE_QUEUE_PEAK: &str = "serve.queue_peak";
    /// Gauge: admission-queue depth at the most recent snapshot/sample
    /// (instantaneous, unlike the monotone peak above).
    pub const GAUGE_SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";

    /// Counter: result-cache hits (answered without touching the engine).
    pub const CACHE_HIT: &str = "cache.hit";
    /// Counter: result-cache misses.
    pub const CACHE_MISS: &str = "cache.miss";
    /// Counter: entries evicted by LRU capacity pressure.
    pub const CACHE_EVICTIONS: &str = "cache.evictions";
    /// Counter: whole-cache invalidations caused by an epoch bump
    /// (§7.1 insert/remove maintenance).
    pub const CACHE_INVALIDATIONS: &str = "cache.invalidations";
    /// Gauge: resident cache entries at shutdown.
    pub const GAUGE_CACHE_ENTRIES: &str = "cache.entries";

    /// Span: client-observed request round-trip latency in the load
    /// generator (p50/p95/p99 come from this histogram).
    pub const SPAN_LOADGEN_REQUEST: &str = "loadgen.request";
    /// Counter: loadgen requests answered with matches.
    pub const LOADGEN_OK: &str = "loadgen.ok";
    /// Counter: loadgen requests answered with Busy (shed by the server).
    pub const LOADGEN_BUSY: &str = "loadgen.busy";
    /// Counter: loadgen transport/protocol errors.
    pub const LOADGEN_ERRORS: &str = "loadgen.errors";

    /// Gauge: time-series samples evicted from the sampler ring
    /// ([`crate::series::Sampler::dropped`]), surfaced live so a scrape
    /// can see ring pressure before the series file is written.
    pub const GAUGE_SERIES_DROPPED: &str = "series.dropped";

    /// Counter: §7.1 maintenance ops accepted into the engine's pending
    /// queue (insert + remove; see `treepi::Engine::queue_insert`).
    pub const MAINT_QUEUED: &str = "maint.queued";
    /// Counter: queued ops folded into published snapshots.
    pub const MAINT_APPLIED: &str = "maint.applied";
    /// Counter: apply batches — copy-on-write snapshots built by
    /// `apply_pending` (N queued ops cost one of these, not N).
    pub const MAINT_APPLY_BATCHES: &str = "maint.apply_batches";
    /// Counter: total snapshot publications (apply batches plus background
    /// re-mine swaps).
    pub const MAINT_SNAPSHOT_SWAPS: &str = "maint.snapshot_swaps";
    /// Counter: background re-mines triggered by accumulated repairs.
    pub const MAINT_REMINE_TRIGGERS: &str = "maint.remine_triggers";
    /// Counter: background re-mines that completed and were swapped in.
    pub const MAINT_REMINES: &str = "maint.remines_completed";
    /// Span: latency of one apply batch (clone + §7.1 ops + swap).
    pub const SPAN_MAINT_APPLY: &str = "maint.apply";
    /// Span: wall time of one background re-mine build.
    pub const SPAN_MAINT_REMINE: &str = "maint.remine";
    /// Gauge: ops queued but not yet applied.
    pub const GAUGE_MAINT_PENDING: &str = "maint.pending_depth";
    /// Gauge: §7.1 ops applied since the last re-mine trigger.
    pub const GAUGE_MAINT_REPAIRS: &str = "maint.repairs_since_mine";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "off"))]
    fn counters_and_spans_round_trip() {
        let r = Registry::new();
        assert!(r.is_enabled());
        let s = r.shard();
        s.add("a.x", 3);
        s.add("a.x", 4);
        s.observe("t.y", Duration::from_micros(5));
        {
            let _g = s.span("t.z");
        }
        r.absorb(s);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.x"), 7);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.span("t.y").unwrap().count, 1);
        assert_eq!(snap.span("t.y").unwrap().total_ns, 5_000);
        assert_eq!(snap.span("t.z").unwrap().count, 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let s = r.shard();
        s.add("a", 1);
        s.observe("b", Duration::from_secs(1));
        {
            let _g = s.span("c");
        }
        r.absorb(s);
        assert!(r.snapshot().is_empty());
        // Disabled spans never read the clock.
        let d = Shard::disabled();
        assert!(d.span("x").start.is_none());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricSet::new();
        a.add("c", 1);
        a.observe_ns("s", 10);
        let mut b = MetricSet::new();
        b.add("c", 2);
        b.add("d", 5);
        b.observe_ns("s", 1000);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 3);
        let s = ab.span("s").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 1010);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn fork_and_merge_shards() {
        let parent = Shard::detached(true);
        parent.add("x", 1);
        let child = parent.fork();
        child.add("x", 2);
        child.observe("s", Duration::from_nanos(7));
        parent.merge(child);
        let set = parent.into_set();
        assert_eq!(set.counter("x"), 3);
        assert_eq!(set.span("s").unwrap().count, 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        // Values below SUB_BUCKETS are their own bucket (exact).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(15), 15);
        // First log-linear bucket: [16, 17).
        assert_eq!(bucket_of(16), SUB_BUCKETS);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // bucket_upper inverts bucket_of over the whole index range.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(i)), i, "bucket {i} not canonical");
        }
        let mut s = SpanStat::default();
        for ns in [1u64, 2, 3, 4, 1000] {
            s.observe_ns(ns);
        }
        assert_eq!(s.count, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1000);
        // p50: rank 3 falls in the exact linear bucket for 3.
        assert_eq!(s.quantile_ns(0.50), 3);
        // p95+ lands in the top occupied bucket, clamped to the max.
        assert_eq!(s.quantile_ns(0.95), 1000);
        assert_eq!(s.quantile_ns(1.0), 1000);
        // Quantiles never under-report: p ≥ actual fraction at/below.
        assert!(s.quantile_ns(0.2) >= 1);
        // Empty span.
        assert_eq!(SpanStat::default().quantile_ns(0.5), 0);
        assert_eq!(SpanStat::default().mean_ns(), 0);
        assert_eq!(SpanStat::default().min_ns_or_zero(), 0);
    }

    #[test]
    fn deterministic_counters_exclude_engine_and_pool_namespaces() {
        let mut m = MetricSet::new();
        m.add("funnel.filtered", 10);
        m.add("engine.workers", 4);
        m.add("pool.tasks", 9);
        m.add("pool.worker_busy_ns", 1234);
        m.add("serve.shed", 3);
        m.add("cache.hit", 8);
        m.add("loadgen.ok", 5);
        m.add("series.dropped", 1);
        m.add("graph.bfs", 2);
        let det = m.deterministic_counters();
        assert_eq!(det.len(), 2);
        assert!(det.contains_key("funnel.filtered"));
        assert!(det.contains_key("graph.bfs"));
        assert!(!det.contains_key("engine.workers"));
        assert!(!det.contains_key("pool.tasks"));
        assert!(!det.contains_key("serve.shed"));
        assert!(!det.contains_key("cache.hit"));
        assert!(!det.contains_key("loadgen.ok"));
        assert!(!det.contains_key("series.dropped"));
    }

    #[test]
    fn text_rendering_is_stable_and_sorted() {
        let mut m = MetricSet::new();
        m.add("z.last", 1);
        m.add("a.first", 2);
        m.observe_ns("s.span", 1500);
        let text = m.render_text();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "counters must sort by name:\n{text}");
        assert!(text.contains("1.50us"));
        assert_eq!(MetricSet::new().render_text(), "(no metrics recorded)\n");
    }

    #[test]
    fn json_rendering_parses_and_round_trips_values() {
        let mut m = MetricSet::new();
        m.add("funnel.filtered", 7);
        m.add("weird\"name\\", 1);
        m.observe_ns("query.filter", 123);
        m.observe_ns("query.filter", 456);
        let text = m.render_json();
        let v = json::parse(&text).expect("render_json must emit valid JSON");
        assert_eq!(
            v.get("schema").and_then(json::Value::as_str),
            Some(JSON_SCHEMA)
        );
        let counters = v.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("funnel.filtered")
                .and_then(json::Value::as_u64),
            Some(7)
        );
        assert_eq!(
            counters.get("weird\"name\\").and_then(json::Value::as_u64),
            Some(1)
        );
        let span = v
            .get("spans")
            .and_then(|s| s.get("query.filter"))
            .expect("span object");
        assert_eq!(span.get("count").and_then(json::Value::as_u64), Some(2));
        assert_eq!(
            span.get("total_ns").and_then(json::Value::as_u64),
            Some(579)
        );
        // Empty set still renders valid JSON with both top-level keys.
        let v = json::parse(&MetricSet::new().render_json()).unwrap();
        assert!(v.get("counters").is_some());
        assert!(v.get("spans").is_some());
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty stat: every quantile is 0.
        let empty = SpanStat::default();
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(empty.quantile_ns(p), 0);
        }
        // Single observation: every quantile is that observation (the
        // bucket upper bound clamps to max_ns).
        let mut single = SpanStat::default();
        single.observe_ns(777);
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(single.quantile_ns(p), 777);
        }
        // Exact bucket boundaries: powers of two start a fresh sub-bucket
        // and the max_ns clamp snaps the estimate back to the exact value.
        for ns in [1u64, 2, 4, 1024, 1 << 20] {
            let mut s = SpanStat::default();
            s.observe_ns(ns);
            assert_eq!(s.quantile_ns(0.5), ns, "boundary value {ns}");
        }
        // Zero-duration observations occupy the dedicated 0 bucket.
        let mut zeros = SpanStat::default();
        zeros.observe_ns(0);
        zeros.observe_ns(0);
        assert_eq!(zeros.quantile_ns(1.0), 0);
        // Two-bucket split: p at the first bucket's cumulative fraction
        // stays in it; just above moves to the next.
        let mut split = SpanStat::default();
        for _ in 0..50 {
            split.observe_ns(3); // exact linear bucket, upper 3
        }
        for _ in 0..50 {
            split.observe_ns(1000); // log-linear bucket [992, 1024)
        }
        assert_eq!(split.quantile_ns(0.50), 3);
        assert_eq!(split.quantile_ns(0.51), 1000);
    }

    /// Deterministic PRNG for the quantile property test (obs has no
    /// dev-dependencies by design, so no proptest).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Property: for adversarial sample sets, the log-linear histogram's
    /// p50/p95/p99 estimates are (a) never below the exact sorted-sample
    /// quantile and (b) at most 6.25% above it. This is the accuracy
    /// contract the HDR-style layout exists to provide (the old pure-log₂
    /// buckets were up to 2× off).
    #[test]
    fn quantile_error_bound_property() {
        let mut state = 0x5eed_1234_u64;
        let check = |samples: &mut Vec<u64>, what: &str| {
            let mut s = SpanStat::default();
            for &ns in samples.iter() {
                s.observe_ns(ns);
            }
            samples.sort_unstable();
            for p in [0.50, 0.95, 0.99] {
                let rank = ((samples.len() as f64) * p).ceil().max(1.0) as usize;
                let exact = samples[rank - 1];
                let est = s.quantile_ns(p);
                assert!(
                    est >= exact,
                    "{what}: p{p} estimate {est} under-reports exact {exact}"
                );
                // est ≤ exact * 1.0625, in integer arithmetic.
                assert!(
                    (est - exact).saturating_mul(10_000) <= exact.saturating_mul(625),
                    "{what}: p{p} estimate {est} exceeds 6.25% error vs exact {exact}"
                );
            }
        };
        for round in 0..50 {
            // Log-uniform: spread across many powers of two.
            let mut log_uniform: Vec<u64> = (0..500)
                .map(|_| {
                    let shift = splitmix64(&mut state) % 40;
                    splitmix64(&mut state) >> (24 + shift % 40)
                })
                .collect();
            check(&mut log_uniform, "log-uniform");
            // Adversarial: values clustered just above powers of two, where
            // pure-log₂ buckets had their worst (~2×) error.
            let mut boundary: Vec<u64> = (0..500)
                .map(|_| {
                    let k = 4 + splitmix64(&mut state) % 30;
                    (1u64 << k) + splitmix64(&mut state) % 8
                })
                .collect();
            check(&mut boundary, "boundary-cluster");
            // Heavy tail: mostly microseconds, occasional seconds.
            let mut heavy: Vec<u64> = (0..500)
                .map(|_| {
                    if splitmix64(&mut state) % 100 < 97 {
                        1_000 + splitmix64(&mut state) % 9_000
                    } else {
                        1_000_000_000 + splitmix64(&mut state) % 1_000_000_000
                    }
                })
                .collect();
            check(&mut heavy, "heavy-tail");
            // Tiny sample counts, including zeros and the linear region.
            let n = 1 + (round % 7) as usize;
            let mut small: Vec<u64> = (0..n).map(|_| splitmix64(&mut state) % 32).collect();
            check(&mut small, "small-linear");
        }
    }

    #[test]
    fn json_round_trips_to_equal_metric_set() {
        let mut m = MetricSet::new();
        m.add("funnel.queries", 3);
        m.add("engine.workers", 2);
        m.set_gauge("mem.index.bytes", 123_456);
        m.set_gauge("mem.alloc.peak_bytes", 9_999_999);
        for ns in [0u64, 1, 500, 1_000_000, u64::MAX >> 20] {
            m.observe_ns("query.verify", ns);
        }
        m.observe_ns("query.filter", 42);
        let parsed = json::parse_metric_set(&m.render_json()).expect("round-trip parse");
        assert_eq!(parsed, m);
        // And rendering the parsed set is a fixpoint.
        assert_eq!(parsed.render_json(), m.render_json());
        // Empty set round-trips too.
        let empty = MetricSet::new();
        assert_eq!(json::parse_metric_set(&empty.render_json()).unwrap(), empty);
    }

    #[test]
    fn parse_metric_set_rejects_malformed_documents() {
        // Wrong schema tag.
        assert!(json::parse_metric_set(
            "{\"schema\": \"other/v9\", \"counters\": {}, \"spans\": {}}"
        )
        .is_err());
        // Missing counters object.
        assert!(json::parse_metric_set(&format!(
            "{{\"schema\": \"{JSON_SCHEMA}\", \"spans\": {{}}}}"
        ))
        .is_err());
        // Histogram total inconsistent with count.
        let bad = format!(
            "{{\"schema\": \"{JSON_SCHEMA}\", \"counters\": {{}}, \"spans\": {{\"s\": \
             {{\"count\": 2, \"total_ns\": 5, \"min_ns\": 1, \"max_ns\": 4, \"buckets\": \
             [[4, 1]]}}}}}}"
        );
        assert!(json::parse_metric_set(&bad).is_err());
        // Non-canonical bucket bound: 32 was a valid pure-log₂ upper but is
        // not a log-linear/16 bound (that bucket's upper is 33) — old-format
        // documents must fail with a clear versioned error.
        let bad = format!(
            "{{\"schema\": \"{JSON_SCHEMA}\", \"counters\": {{}}, \"spans\": {{\"s\": \
             {{\"count\": 1, \"total_ns\": 32, \"min_ns\": 32, \"max_ns\": 32, \"buckets\": \
             [[32, 1]]}}}}}}"
        );
        let err = json::parse_metric_set(&bad).unwrap_err().to_string();
        assert!(
            err.contains("log-linear") && err.contains("treepi.obs/v1"),
            "old-format rejection must name the schema and layout: {err}"
        );
        // Documents without a "gauges" key (pre-gauge emitters) still parse.
        let old = format!(
            "{{\"schema\": \"{JSON_SCHEMA}\", \"counters\": {{\"c\": 1}}, \"spans\": {{}}}}"
        );
        let parsed = json::parse_metric_set(&old).unwrap();
        assert_eq!(parsed.counter("c"), 1);
        assert_eq!(parsed.gauges().count(), 0);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn tracing_registry_collects_span_timeline() {
        let r = Registry::with_tracing();
        assert!(r.is_tracing());
        let s = r.shard();
        assert!(s.is_tracing());
        s.set_trace_query(Some(7));
        {
            let _g = s.span("query.filter");
        }
        s.set_trace_query(None);
        // Forks never trace.
        assert!(!s.fork().is_tracing());
        r.absorb(s);
        let events = r.drain_trace();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "query.filter");
        assert_eq!(events[0].query, Some(7));
        // Metrics flow unchanged alongside the trace.
        assert_eq!(r.snapshot().span("query.filter").unwrap().count, 1);
        // Non-tracing registries yield no events and no trace shards.
        let plain = Registry::new();
        assert!(!plain.is_tracing());
        assert!(!plain.shard().is_tracing());
        assert!(plain.drain_trace().is_empty());
    }

    #[test]
    fn gauges_set_overwrite_and_merge_keeps_max() {
        let mut a = MetricSet::new();
        a.set_gauge("mem.x", 10);
        a.set_gauge("mem.x", 5); // set overwrites, even downward
        assert_eq!(a.gauge("mem.x"), Some(5));
        let mut b = MetricSet::new();
        b.set_gauge("mem.x", 8);
        b.set_gauge("mem.y", 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "gauge merge must be commutative");
        assert_eq!(ab.gauge("mem.x"), Some(8), "merge keeps the max");
        assert_eq!(ab.gauge("mem.y"), Some(1));
        assert_eq!(ab.gauge("mem.missing"), None);
    }

    #[test]
    fn atomic_counter() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| c.add(5));
            }
        });
        assert_eq!(c.get(), 20);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn registry_add_and_drain() {
        let r = Registry::new();
        r.add("direct", 2);
        r.add("direct", 3);
        assert_eq!(r.snapshot().counter("direct"), 5);
        let drained = r.drain();
        assert_eq!(drained.counter("direct"), 5);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn absorb_from_worker_threads_sums_deterministically() {
        let totals: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&workers| {
                let r = Registry::new();
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let r = &r;
                        s.spawn(move || {
                            let shard = r.shard();
                            // Same total work split differently per config.
                            for _ in 0..(240 / workers) {
                                shard.add("work.items", 1);
                            }
                            let _ = w;
                            r.absorb(shard);
                        });
                    }
                });
                r.snapshot().counter("work.items")
            })
            .collect();
        assert_eq!(totals, vec![240, 240, 240]);
    }
}
