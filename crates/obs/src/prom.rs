//! Prometheus text-exposition rendering of a [`MetricSet`]
//! (`treepi.obs/v1` → exposition format version 0.0.4).
//!
//! The mapping is mechanical, which is the point — anything that can
//! scrape Prometheus text can monitor a `treepi serve` process without
//! knowing our JSON schema:
//!
//! - **counters** become `counter` families named `<sanitized>_total`
//!   (`serve.queries` → `serve_queries_total`);
//! - **gauges** become `gauge` families under their sanitized name;
//! - **spans** become `histogram` families named `<sanitized>_seconds`.
//!   The log-linear HDR buckets ([`crate::BUCKETS`]) translate directly:
//!   each occupied bucket's inclusive nanosecond upper bound
//!   ([`crate::bucket_upper`]) is an `le` boundary in seconds, counts are
//!   emitted cumulatively, and the mandatory `+Inf` bucket equals the
//!   span count. `_sum` is `total_ns` in seconds, `_count` is the span
//!   count — so `rate(serve_request_seconds_sum[1m]) /
//!   rate(serve_request_seconds_count[1m])` is the usual mean-latency
//!   query.
//!
//! Metric names are sanitized to the Prometheus charset
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` by [`sanitize`] (dots and any other
//! illegal byte become `_`, a leading digit is prefixed with `_`). The
//! original name is preserved in the `# HELP` line so an operator can map
//! a family back to its `treepi.obs/v1` key. Sanitization can in
//! principle collide (`a.b` and `a_b`); our metric namespace never does,
//! and a collision would merely repeat a family header.
//!
//! Only occupied buckets get an `le` line — a fresh histogram over 720
//! buckets would otherwise dominate every scrape. Prometheus semantics
//! do not require any particular boundary set, only cumulative counts
//! and the `+Inf` terminator.

use crate::{bucket_upper, MetricSet, SpanStat};
use std::fmt::Write as _;

/// Content-Type for HTTP responses carrying [`render`] output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Map an arbitrary metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every illegal character becomes `_` and a
/// leading digit gets a `_` prefix. Idempotent (a sanitized name passes
/// through unchanged), never empty.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a HELP string per the exposition format: backslash and newline.
fn help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Nanoseconds as seconds, in Rust's shortest-round-trip decimal form
/// (never scientific notation — Go's ParseFloat accepts it either way,
/// but plain decimals are easier on human readers).
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn render_histogram(out: &mut String, fam: &str, original: &str, s: &SpanStat) {
    let _ = writeln!(
        out,
        "# HELP {fam} treepi span {} (latency histogram, seconds)",
        help_escape(original)
    );
    let _ = writeln!(out, "# TYPE {fam} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in s.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let _ = writeln!(
            out,
            "{fam}_bucket{{le=\"{}\"}} {cumulative}",
            seconds(bucket_upper(i))
        );
    }
    let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {}", s.count);
    let _ = writeln!(out, "{fam}_sum {}", seconds(s.total_ns));
    let _ = writeln!(out, "{fam}_count {}", s.count);
}

/// Render `set` as Prometheus text exposition format 0.0.4. Families are
/// emitted in original-name order within each kind: counters, then
/// gauges, then span histograms.
pub fn render(set: &MetricSet) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in set.counters() {
        let mut fam = sanitize(name);
        if !fam.ends_with("_total") {
            fam.push_str("_total");
        }
        let _ = writeln!(out, "# HELP {fam} treepi counter {}", help_escape(name));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {v}");
    }
    for (name, v) in set.gauges() {
        let fam = sanitize(name);
        let _ = writeln!(out, "# HELP {fam} treepi gauge {}", help_escape(name));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {v}");
    }
    for (name, s) in set.spans() {
        let fam = format!("{}_seconds", sanitize(name));
        render_histogram(&mut out, &fam, name, s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_into_charset() {
        assert_eq!(sanitize("serve.queries"), "serve_queries");
        assert_eq!(sanitize("mem.alloc.live_bytes"), "mem_alloc_live_bytes");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize(""), "_");
        assert_eq!(sanitize("already_fine:ok"), "already_fine:ok");
    }

    #[test]
    fn sanitize_is_idempotent() {
        for name in ["serve.queries", "9lives", "", "Ω.μ", "x-y.z", "_ok"] {
            let once = sanitize(name);
            assert_eq!(sanitize(&once), once, "sanitize({name:?}) not a fixpoint");
        }
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn counter_total_suffix_is_not_doubled() {
        let mut set = MetricSet::new();
        set.add("loadgen.requests_total", 3);
        let text = render(&set);
        assert!(text.contains("loadgen_requests_total 3"));
        assert!(!text.contains("_total_total"));
    }

    #[test]
    fn seconds_renders_plain_decimals() {
        assert_eq!(seconds(0), "0");
        assert_eq!(seconds(3), "0.000000003");
        assert_eq!(seconds(1_500_000_000), "1.5");
    }
}
