//! Per-query trace timeline: begin/end events collected alongside the
//! span statistics and exported as Chrome trace-event JSON, so a whole
//! batch's parallel execution can be inspected visually in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Tracing shares the shard-per-worker architecture of the metric layer:
//! a [`TraceSink`] (owned by a tracing [`crate::Registry`]) defines the
//! trace epoch and hands each shard a [`TraceShard`] — an unsynchronized
//! event buffer plus a *lane* id that becomes the Chrome `tid`. Workers
//! append complete events lock-free; [`crate::Registry::absorb`] moves
//! them into the sink, and [`crate::Registry::drain_trace`] yields the
//! merged timeline sorted by start offset.
//!
//! When tracing is not enabled (the default), every trace call in the
//! pipeline is a single branch on an `Option` that is `None` — the same
//! cost model as disabled metric shards.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One complete (begin + duration) event on the trace timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage or span name (e.g. `query.filter`, `engine.worker_busy`).
    pub name: String,
    /// Batch position of the query being processed, when one is in scope.
    pub query: Option<u64>,
    /// Lane (worker/shard) id — rendered as the Chrome `tid`.
    pub lane: u32,
    /// Start offset from the trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Event duration in nanoseconds.
    pub dur_ns: u64,
    /// Extra `(key, value)` pairs rendered into the Chrome `args` object —
    /// e.g. the filter-funnel counters attached to a slow-query capture.
    /// Empty for ordinary span events.
    pub args: Vec<(String, u64)>,
}

/// The aggregation point for trace events: defines the epoch all offsets
/// are measured from, hands out lanes, and collects per-shard buffers.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    lanes: AtomicU32,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// A sink whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            lanes: AtomicU32::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A [`TraceShard`] on a fresh lane, sharing this sink's epoch.
    pub fn shard(&self) -> TraceShard {
        TraceShard {
            epoch: self.epoch,
            lane: self.lanes.fetch_add(1, Ordering::Relaxed),
            query: Cell::new(None),
            events: RefCell::new(Vec::new()),
        }
    }

    /// Move a shard's events into the sink.
    pub fn absorb(&self, shard: TraceShard) {
        let mut events = shard.events.into_inner();
        if !events.is_empty() {
            self.events
                .lock()
                .expect("trace sink poisoned")
                .append(&mut events);
        }
    }

    /// Take the collected timeline, sorted by (start, lane, name) so the
    /// rendered file is stable regardless of worker retirement order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"));
        events.sort_by(|a, b| {
            (a.start_ns, a.lane, a.name.as_str()).cmp(&(b.start_ns, b.lane, b.name.as_str()))
        });
        events
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

/// A worker-owned trace buffer: interior mutability, no synchronization.
/// Created by [`TraceSink::shard`] and carried inside [`crate::Shard`].
#[derive(Debug)]
pub struct TraceShard {
    epoch: Instant,
    lane: u32,
    query: Cell<Option<u64>>,
    events: RefCell<Vec<TraceEvent>>,
}

impl TraceShard {
    /// Set (or clear) the query id attached to subsequent events.
    #[inline]
    pub fn set_query(&self, q: Option<u64>) {
        self.query.set(q);
    }

    /// Append a complete event that started at `start` and ran for `dur`.
    /// Starts before the epoch clamp to offset 0.
    pub fn push(&self, name: &str, start: Instant, dur: Duration) {
        let start_ns = start
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.events.borrow_mut().push(TraceEvent {
            name: name.to_string(),
            query: self.query.get(),
            lane: self.lane,
            start_ns,
            dur_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
            args: Vec::new(),
        });
    }
}

/// Render events as Chrome trace-event JSON (the "JSON Array Format" with
/// a `traceEvents` wrapper object, loadable by `chrome://tracing` and
/// Perfetto). Each event is a complete (`"ph": "X"`) slice; timestamps are
/// microseconds with sub-microsecond precision preserved as fractions.
/// Lanes appear as thread ids under one process, with `thread_name`
/// metadata records so the viewer labels them `lane-N`.
pub fn render_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [");
    let mut first = true;
    let mut push_record = |record: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n    ");
        out.push_str(&record);
    };
    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        push_record(
            format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {lane}, \
                 \"args\": {{\"name\": \"lane-{lane}\"}}}}"
            ),
            &mut first,
        );
    }
    for e in events {
        let mut fields: Vec<String> = Vec::with_capacity(1 + e.args.len());
        if let Some(q) = e.query {
            fields.push(format!("\"query\": {q}"));
        }
        for (k, v) in &e.args {
            fields.push(format!("{}: {v}", crate::json::escape_string(k)));
        }
        let args = format!("{{{}}}", fields.join(", "));
        push_record(
            format!(
                "{{\"ph\": \"X\", \"name\": {}, \"cat\": \"treepi\", \"pid\": 1, \"tid\": {}, \
                 \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"args\": {args}}}",
                crate::json::escape_string(&e.name),
                e.lane,
                e.start_ns / 1_000,
                e.start_ns % 1_000,
                e.dur_ns / 1_000,
                e.dur_ns % 1_000,
            ),
            &mut first,
        );
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_events() -> Vec<TraceEvent> {
        let sink = TraceSink::new();
        let a = sink.shard();
        let b = sink.shard();
        let t0 = Instant::now();
        a.set_query(Some(0));
        a.push("query.filter", t0, Duration::from_micros(5));
        b.set_query(Some(1));
        b.push("query.verify", t0, Duration::from_nanos(1500));
        b.set_query(None);
        b.push("engine.worker_wall", t0, Duration::from_micros(9));
        sink.absorb(a);
        sink.absorb(b);
        sink.drain()
    }

    #[test]
    fn shards_get_distinct_lanes_and_events_merge() {
        let events = sample_events();
        assert_eq!(events.len(), 3);
        let lanes: std::collections::BTreeSet<u32> = events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 2);
        let filter = events.iter().find(|e| e.name == "query.filter").unwrap();
        assert_eq!(filter.query, Some(0));
        assert_eq!(filter.dur_ns, 5_000);
        let wall = events
            .iter()
            .find(|e| e.name == "engine.worker_wall")
            .unwrap();
        assert_eq!(wall.query, None);
    }

    #[test]
    fn pre_epoch_starts_clamp_to_zero() {
        let shard = TraceSink::new().shard();
        let Some(long_ago) = Instant::now().checked_sub(Duration::from_secs(3600)) else {
            return; // monotonic clock too young to test against
        };
        shard.push("x", long_ago, Duration::from_nanos(7));
        let e = shard.events.into_inner().pop().unwrap();
        assert_eq!(e.start_ns, 0);
        assert_eq!(e.dur_ns, 7);
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let events = sample_events();
        let text = render_chrome_json(&events);
        let v = json::parse(&text).expect("valid JSON");
        let arr = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // 2 thread_name metadata records + 3 events.
        assert_eq!(arr.len(), 5);
        let slices: Vec<&json::Value> = arr
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 3);
        for s in &slices {
            assert!(s.get("name").is_some());
            assert!(s.get("ts").and_then(json::Value::as_f64).is_some());
            assert!(s.get("dur").and_then(json::Value::as_f64).is_some());
            assert!(s.get("tid").and_then(json::Value::as_u64).is_some());
        }
        // Sub-microsecond durations survive as fractional microseconds.
        let verify = slices
            .iter()
            .find(|s| s.get("name").and_then(json::Value::as_str) == Some("query.verify"))
            .unwrap();
        assert_eq!(verify.get("dur").and_then(json::Value::as_f64), Some(1.5));
    }

    #[test]
    fn event_args_render_into_chrome_args_object() {
        let e = TraceEvent {
            name: "serve.slow_query".to_string(),
            query: Some(42),
            lane: 0,
            start_ns: 1_000,
            dur_ns: 2_500,
            args: vec![
                ("funnel.filtered".to_string(), 17),
                ("funnel.answers".to_string(), 3),
            ],
        };
        let v = json::parse(&render_chrome_json(&[e])).expect("valid JSON");
        let arr = v
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .unwrap();
        let slice = arr
            .iter()
            .find(|r| r.get("ph").and_then(json::Value::as_str) == Some("X"))
            .unwrap();
        let args = slice.get("args").expect("args object");
        assert_eq!(args.get("query").and_then(json::Value::as_u64), Some(42));
        assert_eq!(
            args.get("funnel.filtered").and_then(json::Value::as_u64),
            Some(17)
        );
        assert_eq!(
            args.get("funnel.answers").and_then(json::Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn empty_trace_renders_valid_json() {
        let v = json::parse(&render_chrome_json(&[])).expect("valid JSON");
        assert_eq!(
            v.get("traceEvents")
                .and_then(json::Value::as_array)
                .map(<[json::Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let sink = TraceSink::new();
        let s = sink.shard();
        let t0 = Instant::now();
        s.push("b", t0 + Duration::from_micros(10), Duration::ZERO);
        s.push("a", t0, Duration::ZERO);
        sink.absorb(s);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(events[0].start_ns <= events[1].start_ns);
        assert_eq!(events[0].name, "a");
        assert!(sink.drain().is_empty());
    }
}
