//! `treepi` — command-line interface to the TreePi graph index.
//!
//! ```text
//! treepi build  <db.gspan> <index.tpi> [--alpha A --beta B --eta E --gamma G] [--threads N] [--metrics out.json]
//!               [--trace out.json] [--timeseries out.json] [--sample-interval-ms M]
//! treepi query  <index.tpi> <queries.gspan> [--stats] [--seed N] [--threads N] [--metrics out.json] [--trace out.json]
//! treepi gquery <db.gspan> <queries.gspan> [--threads N] [--metrics out.json]  (gIndex baseline)
//! treepi metrics-diff <baseline.json> <current.json> [--max-regress-pct P] [--time] [--include-exempt] [--update-baseline]
//! treepi stats  <index.tpi> | --addr HOST:PORT     (live server snapshot)
//! treepi dbstats <db.gspan>
//! treepi gen    <out.gspan> --chem N | --synthetic N L
//! treepi scan   <db.gspan> <queries.gspan> [--threads N]   (index-free baseline)
//! treepi serve  <index.tpi> [--addr HOST:PORT] [--threads N] [--batch-window-us U] [--max-batch N]
//!               [--queue-cap N] [--cache-cap N] [--max-requests N] [--seed N] [--metrics out.json]
//!               [--timeseries out.json] [--sample-interval-ms M] [--slow-query-us U] [--slow-log out.json]
//!               [--http-addr HOST:PORT] [--stall-threshold-us U] [--access-log out.jsonl]
//!               [--remine-threshold N]
//! treepi loadgen <addr> <queries.gspan> [--connections N] [--requests N] [--rate R] [--zipf S]
//!               [--seed N] [--shutdown] [--metrics out.json]
//! treepi prom   <metrics.json>          (convert a saved snapshot to Prometheus text)
//! ```
//!
//! `--metrics out.json` enables the `obs` registry for the run and writes
//! the drained counters, `mem.*` gauges, and stage-span histograms as
//! stable JSON (schema `treepi.obs/v1`; see EXPERIMENTS.md). Without the
//! flag the pipeline runs with a disabled registry and records nothing —
//! except `serve`, whose registry is always on so the `STATS` admin op
//! (`treepi stats --addr`) can snapshot live metrics mid-load.
//!
//! `--trace out.json` (query, build) additionally collects a trace
//! timeline — per-query pipeline stages for `query`, build phases
//! (`build.mine` / `mine.levelN` / `build.shrink` / `build.centers`) for
//! `build` — and writes it as Chrome trace-event JSON, loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `--timeseries out.json` (serve, build) records a `treepi.series/v1`
//! time series: periodic samples of queue depth, shed count, cache hits,
//! and live heap bytes for `serve` (every `--sample-interval-ms`, default
//! 100), and one labelled sample per phase boundary for `build`.
//!
//! `--slow-query-us U` (serve) captures every query whose verify stage
//! takes at least `U` µs into a bounded forensics ring (counted under
//! `serve.slow_queries`); `--slow-log out.json` writes the captures as
//! Chrome trace events with the filter-funnel counters attached as args.
//!
//! `--http-addr HOST:PORT` (serve) opens the HTTP monitoring listener on
//! the same event loop: `GET /metrics` (live snapshot as Prometheus
//! text), `GET /healthz` (`ok` / `degraded` / `draining`), `GET /slowz`
//! (the current slow-query ring as Chrome trace JSON).
//! `--stall-threshold-us U` tunes the event-loop stall watchdog (default
//! 100000 µs; 0 disables it) and `--access-log out.jsonl` streams one
//! structured JSON record per request.
//!
//! `--remine-threshold N` (serve) re-mines the feature set on a
//! background thread after every N applied §7.1 insert/remove ops
//! (default 0 = never), swapping the rebuilt index in under a fresh
//! epoch while queries keep serving from pinned snapshots; progress is
//! visible as `maint.*` counters in STATS and `/metrics`.
//!
//! `prom` converts a saved `treepi.obs/v1` metrics file to the same
//! Prometheus text `/metrics` serves — useful for pushing one-shot build
//! or loadgen metrics through a pushgateway.
//!
//! `metrics-diff` compares two metrics files and exits non-zero when a
//! gated value (counters, `mem.*` gauges, span counts; with `--time` also
//! span p50/p95) regressed by more than `--max-regress-pct` percent — the
//! CI perf gate. `--update-baseline` instead rewrites `<baseline.json>`
//! from `<current.json>` (canonically re-rendered) and skips gating — the
//! convenience for refreshing `ci/*-baseline.json` after an intended
//! change.
//!
//! Graph files use the gSpan transaction format (`t # i` / `v id label` /
//! `e u v label`); see `graph_core::io`.

use graph_core::io::{parse_graphs, write_graphs};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;
use treepi::{TreePiIndex, TreePiParams};

/// Count every (de)allocation of the process so `--metrics` runs can report
/// `mem.alloc.*` gauges. Compiled with the obs `off` feature, the wrapper
/// forwards straight to the system allocator without touching a counter.
#[global_allocator]
static ALLOC: obs::alloc::TrackingAlloc<std::alloc::System> =
    obs::alloc::TrackingAlloc::new(std::alloc::System);

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  treepi build  <db.gspan> <index.tpi> [--alpha A] [--beta B] [--eta E] [--gamma G] [--threads N] [--metrics out.json] [--trace out.json] [--timeseries out.json] [--sample-interval-ms 100]\n  \
         treepi query  <index.tpi> <queries.gspan> [--stats] [--seed N] [--threads N] [--metrics out.json] [--trace out.json]\n  \
         treepi gquery <db.gspan> <queries.gspan> [--threads N] [--metrics out.json]\n  \
         treepi metrics-diff <baseline.json> <current.json> [--max-regress-pct P] [--time] [--include-exempt] [--update-baseline]\n  \
         treepi stats  (<index.tpi> | --addr HOST:PORT)\n  \
         treepi dbstats <db.gspan>\n  \
         treepi gen    <out.gspan> (--chem N | --synthetic N L) [--seed N]\n  \
         treepi scan   <db.gspan> <queries.gspan> [--threads N]\n  \
         treepi serve  <index.tpi> [--addr 127.0.0.1:7878] [--threads N] [--batch-window-us 1000] [--max-batch 64] [--queue-cap 1024] [--cache-cap 4096] [--max-requests 0] [--seed N] [--metrics out.json] [--timeseries out.json] [--sample-interval-ms 100] [--slow-query-us 0] [--slow-log out.json] [--http-addr HOST:PORT] [--stall-threshold-us 100000] [--access-log out.jsonl] [--remine-threshold 0]\n  \
         treepi loadgen <addr> <queries.gspan> [--connections 4] [--requests 1000] [--rate R] [--zipf 0.0] [--seed N] [--shutdown] [--metrics out.json]\n  \
         treepi prom   <metrics.json>"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn read_graphs_file(path: &str) -> Result<Vec<graph_core::Graph>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_graphs(&text).map_err(|e| format!("{path}: {e}"))
}

/// A registry enabled only when `--metrics` or `--trace` was given, so the
/// pipeline's instrumented entry points cost one predicted branch otherwise.
/// Tracing implies metric collection (both ride the same shards).
fn metrics_registry(metrics_path: &Option<String>, trace_path: &Option<String>) -> obs::Registry {
    if trace_path.is_some() {
        obs::Registry::with_tracing()
    } else if metrics_path.is_some() {
        obs::Registry::new()
    } else {
        obs::Registry::disabled()
    }
}

/// Drain `registry` to `path` as `treepi.obs/v1` JSON.
fn write_metrics(registry: &obs::Registry, path: &str) -> Result<(), String> {
    let set = registry.drain();
    std::fs::write(path, set.render_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// Drain the trace timeline to `path` as Chrome trace-event JSON.
fn write_trace(registry: &obs::Registry, path: &str) -> Result<(), String> {
    let events = registry.drain_trace();
    std::fs::write(path, obs::trace::render_chrome_json(&events))
        .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {} trace events to {path} (load in chrome://tracing or ui.perfetto.dev)",
        events.len()
    );
    Ok(())
}

/// Write a sampler's retained series to `path` as `treepi.series/v1` JSON.
fn write_series(sampler: &obs::series::Sampler, path: &str) -> Result<(), String> {
    std::fs::write(path, sampler.render_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {} time-series samples to {path} ({} dropped by the ring)",
        sampler.len(),
        sampler.dropped()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().cloned().unwrap_or_default();
    match cmd.as_str() {
        "build" => {
            let (Some(db_path), Some(out_path)) = (args.get(1), args.get(2)) else {
                return Err("build needs <db.gspan> <index.tpi>".into());
            };
            let db = read_graphs_file(db_path)?;
            let defaults = TreePiParams::default();
            let params = TreePiParams {
                sigma: mining::SigmaFn {
                    alpha: parse_flag(&args, "--alpha", defaults.sigma.alpha)?,
                    beta: parse_flag(&args, "--beta", defaults.sigma.beta)?,
                    eta: parse_flag(&args, "--eta", defaults.sigma.eta)?,
                },
                gamma: parse_flag(&args, "--gamma", defaults.gamma)?,
                ..defaults
            };
            let threads = treepi::resolve_threads(parse_flag(&args, "--threads", 0usize)?);
            let metrics_path = flag_value(&args, "--metrics");
            let trace_path = flag_value(&args, "--trace");
            let series_path = flag_value(&args, "--timeseries");
            let interval_ms = parse_flag(&args, "--sample-interval-ms", 100u64)?;
            let registry = metrics_registry(&metrics_path, &trace_path);
            let sampler = if series_path.is_some() {
                obs::series::Sampler::new(std::time::Duration::from_millis(interval_ms), 4096)
            } else {
                obs::series::Sampler::disabled()
            };
            let t = std::time::Instant::now();
            let n = db.len();
            let index = {
                let pool = graph_core::par::Pool::new(threads.max(1));
                let shard = registry.shard();
                let index =
                    TreePiIndex::build_with_pool_obs_sampled(db, params, &pool, &shard, &sampler);
                registry.absorb(shard);
                index
            };
            eprintln!(
                "indexed {n} graphs: {} features, {} center positions in {:.2?}",
                index.feature_count(),
                index.stats().center_positions,
                t.elapsed()
            );
            let mut f = std::fs::File::create(out_path).map_err(|e| e.to_string())?;
            index.save(&mut f).map_err(|e| e.to_string())?;
            eprintln!("wrote {out_path}");
            if let Some(path) = &trace_path {
                write_trace(&registry, path)?;
            }
            if let Some(path) = &series_path {
                write_series(&sampler, path)?;
            }
            if let Some(path) = &metrics_path {
                index.record_mem_gauges(&registry);
                obs::alloc::record_gauges(&registry);
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "query" => {
            let (Some(idx_path), Some(q_path)) = (args.get(1), args.get(2)) else {
                return Err("query needs <index.tpi> <queries.gspan>".into());
            };
            let mut f = std::fs::File::open(idx_path).map_err(|e| e.to_string())?;
            let index = TreePiIndex::load(&mut f).map_err(|e| e.to_string())?;
            let queries = read_graphs_file(q_path)?;
            let seed = parse_flag(&args, "--seed", 2007u64)?;
            // 0 = available parallelism (the default); results are
            // identical at any pool size (per-query seeded RNGs). The
            // persistent worker pool is sized once here and reused for the
            // whole serving run.
            let threads = parse_flag(&args, "--threads", 0usize)?;
            let want_stats = args.iter().any(|a| a == "--stats");
            let metrics_path = flag_value(&args, "--metrics");
            let trace_path = flag_value(&args, "--trace");
            let registry = metrics_registry(&metrics_path, &trace_path);
            let engine = treepi::Engine::new(index, threads);
            let (results, summary) =
                engine.query_batch_obs(&queries, treepi::QueryOptions::default(), seed, &registry);
            let index = engine.into_index();
            for (i, (q, r)) in queries.iter().zip(&results).enumerate() {
                let ids: Vec<String> = r.matches.iter().map(|g| g.to_string()).collect();
                println!("q{i}: {}", ids.join(" "));
                if want_stats {
                    eprintln!(
                        "  |q|={} parts={} |SFq|={} |Pq|={} |P'q|={} |Dq|={} time={:.2?}",
                        q.edge_count(),
                        r.stats.partition_size,
                        r.stats.sf_size,
                        r.stats.filtered,
                        r.stats.pruned,
                        r.stats.answers,
                        r.stats.total()
                    );
                }
            }
            if want_stats {
                eprintln!("{summary}");
            }
            if let Some(path) = &trace_path {
                write_trace(&registry, path)?;
            }
            if let Some(path) = &metrics_path {
                index.record_mem_gauges(&registry);
                obs::alloc::record_gauges(&registry);
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "gquery" => {
            let (Some(db_path), Some(q_path)) = (args.get(1), args.get(2)) else {
                return Err("gquery needs <db.gspan> <queries.gspan>".into());
            };
            let db = read_graphs_file(db_path)?;
            let queries = read_graphs_file(q_path)?;
            let threads = parse_flag(&args, "--threads", 0usize)?;
            let metrics_path = flag_value(&args, "--metrics");
            let n = db.len();
            let t = std::time::Instant::now();
            let index = gindex::GIndex::build(db, gindex::GIndexParams::paper_default(n));
            eprintln!(
                "gIndex over {n} graphs: {} fragments in {:.2?}",
                index.fragments().len(),
                t.elapsed()
            );
            let registry = metrics_registry(&metrics_path, &None);
            let results = index.query_batch_obs(&queries, threads, &registry);
            for (i, r) in results.iter().enumerate() {
                let ids: Vec<String> = r.matches.iter().map(|g| g.to_string()).collect();
                println!("q{i}: {}", ids.join(" "));
            }
            if let Some(path) = &metrics_path {
                index.record_mem_gauges(&registry);
                obs::alloc::record_gauges(&registry);
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "metrics-diff" => {
            let (Some(base_path), Some(cur_path)) = (args.get(1), args.get(2)) else {
                return Err("metrics-diff needs <baseline.json> <current.json>".into());
            };
            let read = |path: &str| -> Result<obs::MetricSet, String> {
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                obs::json::parse_metric_set(&text).map_err(|e| format!("{path}: {e}"))
            };
            if args.iter().any(|a| a == "--update-baseline") {
                // Re-render (rather than copy) so the baseline is always in
                // canonical schema form regardless of how current.json was
                // produced.
                let current = read(cur_path)?;
                std::fs::write(base_path, current.render_json())
                    .map_err(|e| format!("{base_path}: {e}"))?;
                eprintln!("updated baseline {base_path} from {cur_path}");
                return Ok(());
            }
            let base = read(base_path)?;
            let current = read(cur_path)?;
            let opts = obs::diff::DiffOptions {
                max_regress_pct: parse_flag(&args, "--max-regress-pct", 10.0f64)?,
                include_timings: args.iter().any(|a| a == "--time"),
                include_exempt: args.iter().any(|a| a == "--include-exempt"),
            };
            let report = obs::diff::diff(&base, &current, &opts);
            print!("{}", report.render_text());
            if report.regressed() {
                // Verdict already printed; exit non-zero for CI.
                return Err(String::new());
            }
            Ok(())
        }
        "dbstats" => {
            let Some(db_path) = args.get(1) else {
                return Err("dbstats needs <db.gspan>".into());
            };
            let db = read_graphs_file(db_path)?;
            let s = graph_core::db_stats(&db);
            println!("graphs:              {}", s.graphs);
            println!("mean vertices:       {:.2}", s.mean_vertices);
            println!("mean edges:          {:.2}", s.mean_edges);
            println!("max vertices:        {}", s.max_vertices);
            println!("max edges:           {}", s.max_edges);
            println!("mean degree:         {:.2}", s.mean_degree);
            println!("max degree:          {}", s.max_degree);
            println!("distinct v-labels:   {}", s.vertex_labels);
            println!("distinct e-labels:   {}", s.edge_labels);
            println!("tree fraction:       {:.2}", s.tree_fraction);
            println!("connected fraction:  {:.2}", s.connected_fraction);
            println!("mean cyclomatic no.: {:.2}", s.mean_cycles);
            let cap = 20usize;
            for (title, hist) in [
                (
                    "vertex label histogram",
                    graph_core::vertex_label_histogram(&db),
                ),
                (
                    "edge label histogram",
                    graph_core::edge_label_histogram(&db),
                ),
            ] {
                println!("{title}:");
                for &(label, count) in hist.iter().take(cap) {
                    println!("  {label:>6}: {count}");
                }
                if hist.len() > cap {
                    println!("  … and {} more labels", hist.len() - cap);
                }
            }
            Ok(())
        }
        "stats" => {
            // Live mode: fetch a `treepi.obs/v1` snapshot from a running
            // server via the STATS admin op and print it verbatim.
            if let Some(addr) = flag_value(&args, "--addr") {
                let mut client =
                    serve::Client::connect_retry(&addr, std::time::Duration::from_secs(2))
                        .map_err(|e| format!("{addr}: {e}"))?;
                let resp = client.stats().map_err(|e| e.to_string())?;
                return match resp.body {
                    serve::ResponseBody::Stats(json) => {
                        print!("{json}");
                        Ok(())
                    }
                    other => Err(format!("unexpected response to STATS: {other:?}")),
                };
            }
            let Some(idx_path) = args.get(1) else {
                return Err("stats needs <index.tpi> or --addr HOST:PORT".into());
            };
            let mut f = std::fs::File::open(idx_path).map_err(|e| e.to_string())?;
            let index = TreePiIndex::load(&mut f).map_err(|e| e.to_string())?;
            let s = index.stats();
            println!("graphs:            {}", index.active_count());
            println!("features:          {}", index.feature_count());
            println!("mined (pre-shrink): {}", s.mined);
            println!("center entries:    {}", s.center_entries);
            println!("center positions:  {}", s.center_positions);
            println!("memory estimate:   {} KiB", index.memory_estimate() / 1024);
            let m = index.memory_breakdown();
            println!("heap breakdown:    {} KiB total", m.total() / 1024);
            println!("  database:        {} KiB", m.db_bytes / 1024);
            println!("  feature trees:   {} KiB", m.features_bytes / 1024);
            println!("  support sets:    {} KiB", m.supports_bytes / 1024);
            println!("  center tables:   {} KiB", m.centers_bytes / 1024);
            println!("  canon trie:      {} KiB", m.trie_bytes / 1024);
            println!(
                "  tombstones:      {} KiB (excluded)",
                m.tombstones_bytes / 1024
            );
            let p = index.params();
            println!(
                "params:            alpha={} beta={} eta={} gamma={}",
                p.sigma.alpha, p.sigma.beta, p.sigma.eta, p.gamma
            );
            let mut by_size = std::collections::BTreeMap::new();
            for f in index.features() {
                *by_size.entry(f.size()).or_insert(0usize) += 1;
            }
            for (size, count) in by_size {
                println!("  {size}-edge features: {count}");
            }
            Ok(())
        }
        "prom" => {
            // Offline conversion: re-render a saved `treepi.obs/v1` snapshot
            // (e.g. the file written by `serve --metrics`, or the STATS JSON
            // captured via `stats --addr`) in Prometheus text exposition
            // format, for backfilling dashboards from archived runs.
            let Some(path) = args.get(1) else {
                return Err("prom needs <metrics.json>".into());
            };
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let set = obs::json::parse_metric_set(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", obs::prom::render(&set));
            Ok(())
        }
        "gen" => {
            let Some(out_path) = args.get(1) else {
                return Err("gen needs <out.gspan>".into());
            };
            let seed = parse_flag(&args, "--seed", 2007u64)?;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let graphs = if let Some(n) = flag_value(&args, "--chem") {
                let n: usize = n.parse().map_err(|_| "bad --chem count")?;
                datagen::generate_chem(&datagen::ChemParams::sized(n), &mut rng)
            } else if let Some(n) = flag_value(&args, "--synthetic") {
                let n: usize = n.parse().map_err(|_| "bad --synthetic count")?;
                let labels: u32 = parse_flag(&args, "--labels", 4u32)?;
                datagen::generate_synthetic(
                    &datagen::SyntheticParams {
                        n_graphs: n,
                        seed_size: 10.0,
                        graph_size: 20.0,
                        seed_count: (n / 8).max(20),
                        vertex_labels: labels,
                        edge_labels: 2,
                    },
                    &mut rng,
                )
            } else {
                return Err("gen needs --chem N or --synthetic N".into());
            };
            std::fs::write(out_path, write_graphs(&graphs)).map_err(|e| e.to_string())?;
            eprintln!("wrote {} graphs to {out_path}", graphs.len());
            Ok(())
        }
        "serve" => {
            let Some(idx_path) = args.get(1) else {
                return Err("serve needs <index.tpi>".into());
            };
            let mut f = std::fs::File::open(idx_path).map_err(|e| e.to_string())?;
            let index = TreePiIndex::load(&mut f).map_err(|e| e.to_string())?;
            let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
            let threads = parse_flag(&args, "--threads", 0usize)?;
            let stall_us = parse_flag(&args, "--stall-threshold-us", 100_000u64)?;
            let config = serve::ServeConfig {
                batch_window: std::time::Duration::from_micros(parse_flag(
                    &args,
                    "--batch-window-us",
                    1000u64,
                )?),
                max_batch: parse_flag(&args, "--max-batch", 64usize)?,
                queue_cap: parse_flag(&args, "--queue-cap", 1024usize)?,
                cache_cap: parse_flag(&args, "--cache-cap", 4096usize)?,
                max_requests: parse_flag(&args, "--max-requests", 0u64)?,
                seed: parse_flag(&args, "--seed", 2007u64)?,
                http_addr: flag_value(&args, "--http-addr"),
                stall_threshold: (stall_us > 0).then(|| std::time::Duration::from_micros(stall_us)),
                ..serve::ServeConfig::default()
            };
            let metrics_path = flag_value(&args, "--metrics");
            let series_path = flag_value(&args, "--timeseries");
            let interval_ms = parse_flag(&args, "--sample-interval-ms", 100u64)?;
            let slow_us = parse_flag(&args, "--slow-query-us", 0u64)?;
            let slow_log_path = flag_value(&args, "--slow-log");
            let access_log_path = flag_value(&args, "--access-log");
            // Serving telemetry is always on (the STATS admin op must see
            // live counters even without --metrics); the flag only decides
            // whether the final snapshot is written to a file.
            let registry = obs::Registry::new();
            let mut telemetry = serve::ServeTelemetry {
                sampler: if series_path.is_some() {
                    obs::series::Sampler::new(std::time::Duration::from_millis(interval_ms), 4096)
                } else {
                    obs::series::Sampler::disabled()
                },
                slow: serve::SlowQueryLog::new(
                    (slow_us > 0).then(|| std::time::Duration::from_micros(slow_us)),
                    serve::telemetry::SLOW_LOG_CAP,
                ),
                access: access_log_path
                    .as_deref()
                    .map(serve::AccessLog::create)
                    .transpose()
                    .map_err(|e| format!("--access-log: {e}"))?,
            };
            let remine_threshold = parse_flag(&args, "--remine-threshold", 0u64)?;
            let engine = treepi::Engine::with_remine(index, threads, remine_threshold);
            let server = serve::Server::bind(&addr, config).map_err(|e| format!("{addr}: {e}"))?;
            eprintln!(
                "serving {} graphs on {} ({} worker threads)",
                engine.index().active_count(),
                server.local_addr().map_err(|e| e.to_string())?,
                engine.parallelism()
            );
            if let Some(http) = server.http_local_addr() {
                eprintln!("monitoring on http://{http} (/metrics /healthz /slowz)");
            }
            let report = server
                .run_with_telemetry(&engine, &registry, &mut telemetry)
                .map_err(|e| e.to_string())?;
            eprintln!("serve done: {report}");
            if let Some(access) = &telemetry.access {
                eprintln!(
                    "wrote {} access-log records to {} ({} write errors)",
                    access.lines(),
                    access_log_path.as_deref().unwrap_or("?"),
                    access.write_errors()
                );
            }
            if telemetry.slow.seen() > 0 {
                eprintln!(
                    "slow queries (verify ≥ {slow_us}us): {} seen, {} captured",
                    telemetry.slow.seen(),
                    telemetry.slow.len()
                );
            }
            if let Some(path) = &series_path {
                write_series(&telemetry.sampler, path)?;
            }
            if let Some(path) = &slow_log_path {
                std::fs::write(path, telemetry.slow.render_chrome_json())
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!(
                    "wrote {} slow-query captures to {path}",
                    telemetry.slow.len()
                );
            }
            if let Some(path) = &metrics_path {
                engine.index().record_mem_gauges(&registry);
                obs::alloc::record_gauges(&registry);
                write_metrics(&registry, path)?;
            }
            Ok(())
        }
        "loadgen" => {
            let (Some(addr), Some(q_path)) = (args.get(1), args.get(2)) else {
                return Err("loadgen needs <addr> <queries.gspan>".into());
            };
            let queries = read_graphs_file(q_path)?;
            let cfg = serve::LoadgenConfig {
                connections: parse_flag(&args, "--connections", 4usize)?,
                requests: parse_flag(&args, "--requests", 1000u64)?,
                rate: flag_value(&args, "--rate")
                    .map(|v| v.parse().map_err(|_| format!("bad value for --rate: {v}")))
                    .transpose()?,
                zipf: parse_flag(&args, "--zipf", 0.0f64)?,
                seed: parse_flag(&args, "--seed", 42u64)?,
                shutdown: args.iter().any(|a| a == "--shutdown"),
                ..serve::LoadgenConfig::default()
            };
            let metrics_path = flag_value(&args, "--metrics");
            let registry = metrics_registry(&metrics_path, &None);
            let report =
                serve::loadgen::run(addr, &queries, &cfg, &registry).map_err(|e| e.to_string())?;
            println!("{report}");
            if let Some(path) = &metrics_path {
                write_metrics(&registry, path)?;
            }
            if report.ok == 0 {
                return Err("no successful responses".into());
            }
            Ok(())
        }
        "scan" => {
            let (Some(db_path), Some(q_path)) = (args.get(1), args.get(2)) else {
                return Err("scan needs <db.gspan> <queries.gspan>".into());
            };
            let db = read_graphs_file(db_path)?;
            let queries = read_graphs_file(q_path)?;
            let threads = parse_flag(&args, "--threads", 0usize)?;
            let all = graph_core::par::ordered_map(&queries, threads, |q| {
                db.iter()
                    .enumerate()
                    .filter(|(_, g)| graph_core::is_subgraph_isomorphic(q, g))
                    .map(|(gid, _)| gid.to_string())
                    .collect::<Vec<String>>()
            });
            for (i, ids) in all.iter().enumerate() {
                println!("q{i}: {}", ids.join(" "));
            }
            Ok(())
        }
        _ => {
            usage();
            Err(String::new())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            ExitCode::from(1)
        }
    }
}
