//! Frequent pattern mining for the TreePi reproduction.
//!
//! - [`support`]: support sets, galloping intersection, and the paper's
//!   σ(s) threshold function (Eq. 1);
//! - [`tree_miner`]: level-wise frequent **subtree** mining plus the
//!   shrinking step (§4.1.2) — TreePi's feature discovery;
//! - [`graph_miner`]: level-wise frequent **subgraph** mining with gIndex's
//!   ψ(l) function — the baseline's feature discovery.

#![warn(missing_docs)]

pub mod graph_miner;
pub mod support;
pub mod tree_miner;

pub use graph_miner::{mine_frequent_subgraphs, MinedGraph, PsiFn};
pub use support::{intersect, intersect_into, intersect_many, SigmaFn, SupportSet};
pub use tree_miner::{
    leaf_removal_canons, mine_frequent_trees, mine_frequent_trees_apriori,
    mine_frequent_trees_enum, mine_frequent_trees_levelwise, mine_frequent_trees_levelwise_obs,
    mine_frequent_trees_obs, mine_frequent_trees_pool_obs, mine_frequent_trees_threads,
    mine_frequent_trees_threads_obs, shrink_features, shrink_features_pool,
    shrink_features_threads, MinedTree, MiningLimits, MiningStats,
};
