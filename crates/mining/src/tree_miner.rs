//! Level-wise frequent subtree mining (paper §4.1.3).
//!
//! "First, all the frequent trees according to the σ function are
//! discovered by any level wise edge-increasing graph mining method."
//!
//! We use an apriori-style pattern-growth:
//!
//! 1. level 1 = all distinct single-edge trees, with exact support sets
//!    from one database scan;
//! 2. level s+1 candidates = each level-s tree extended by one leaf edge
//!    using a globally observed `(attach label, edge label, leaf label)`
//!    triple, deduplicated by canonical string;
//! 3. apriori pruning: every leaf-removal subtree of a candidate must be
//!    frequent at the previous level (sound because σ is non-decreasing),
//!    and the candidate's support is a subset of the intersection of those
//!    subtrees' supports;
//! 4. exact support counting by subtree-embedding tests over that
//!    intersection.
//!
//! This is deliberately complete: with σ(s) = 1 for s ≤ α (the paper's
//! completeness requirement) *every* distinct subtree up to α edges is
//! found.

use crate::support::{intersect_many, SigmaFn, SupportSet};
use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rustc_hash::{FxHashMap, FxHashSet};
use tree_core::{canonical_string, CanonString, Tree};

/// A mined frequent tree with its exact support set.
#[derive(Clone, Debug)]
pub struct MinedTree {
    /// The pattern.
    pub tree: Tree,
    /// Canonical string (index key).
    pub canon: CanonString,
    /// Sorted ids of database graphs containing the pattern.
    pub support: SupportSet,
}

impl MinedTree {
    /// Edge size of the pattern.
    pub fn size(&self) -> usize {
        self.tree.edge_count()
    }
}

/// Safety limits for mining (the paper tunes σ parameters "until the
/// feature tree set can fit in the memory"; these are the hard stops).
#[derive(Clone, Copy, Debug)]
pub struct MiningLimits {
    /// Hard cap on the total number of patterns kept across levels.
    pub max_patterns: usize,
    /// Hard cap on candidates generated per level.
    pub max_candidates_per_level: usize,
}

impl Default for MiningLimits {
    fn default() -> Self {
        Self {
            max_patterns: 200_000,
            max_candidates_per_level: 20_000_000,
        }
    }
}

/// Statistics of one mining run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MiningStats {
    /// Patterns found per level are summed here.
    pub patterns: usize,
    /// Candidates generated (before support counting).
    pub candidates: usize,
    /// Candidates rejected by the apriori subtree check.
    pub apriori_pruned: usize,
    /// Embedding tests performed.
    pub embed_tests: usize,
    /// Whether a hard limit stopped mining early.
    pub truncated: bool,
}

/// Cheap per-graph summaries used to skip hopeless embedding tests.
struct GraphSummary {
    vlabel_counts: FxHashMap<VLabel, u32>,
    triple_counts: FxHashMap<(VLabel, ELabel, VLabel), u32>,
}

impl GraphSummary {
    fn new(g: &Graph) -> Self {
        let mut vlabel_counts = FxHashMap::default();
        for v in g.vertices() {
            *vlabel_counts.entry(g.vlabel(v)).or_insert(0) += 1;
        }
        let mut triple_counts = FxHashMap::default();
        for e in g.edges() {
            let a = g.vlabel(e.u);
            let b = g.vlabel(e.v);
            *triple_counts
                .entry((a.min(b), e.label, a.max(b)))
                .or_insert(0) += 1;
        }
        Self {
            vlabel_counts,
            triple_counts,
        }
    }

    fn may_contain(&self, p: &Graph) -> bool {
        let mut need_v: FxHashMap<VLabel, u32> = FxHashMap::default();
        for v in p.vertices() {
            *need_v.entry(p.vlabel(v)).or_insert(0) += 1;
        }
        for (l, n) in need_v {
            if self.vlabel_counts.get(&l).copied().unwrap_or(0) < n {
                return false;
            }
        }
        let mut need_e: FxHashMap<(VLabel, ELabel, VLabel), u32> = FxHashMap::default();
        for e in p.edges() {
            let a = p.vlabel(e.u);
            let b = p.vlabel(e.v);
            *need_e.entry((a.min(b), e.label, a.max(b))).or_insert(0) += 1;
        }
        for (t, n) in need_e {
            if self.triple_counts.get(&t).copied().unwrap_or(0) < n {
                return false;
            }
        }
        true
    }
}

/// Build the canonical single-edge tree for a labeled edge.
fn single_edge_tree(a: VLabel, el: ELabel, b: VLabel) -> Tree {
    let (a, b) = (a.min(b), a.max(b));
    let mut gb = GraphBuilder::with_capacity(2, 1);
    let u = gb.add_vertex(a);
    let v = gb.add_vertex(b);
    gb.add_edge(u, v, el).expect("single edge");
    Tree::from_graph(gb.build()).expect("an edge is a tree")
}

/// Extend `t` with a new leaf labeled `leaf` attached to vertex `at` via an
/// edge labeled `el`.
fn extend_with_leaf(t: &Tree, at: VertexId, el: ELabel, leaf: VLabel) -> Tree {
    let g = t.graph();
    let mut b = GraphBuilder::with_capacity(g.vertex_count() + 1, g.edge_count() + 1);
    for v in g.vertices() {
        b.add_vertex(g.vlabel(v));
    }
    for e in g.edges() {
        b.add_edge(e.u, e.v, e.label).expect("copying a tree");
    }
    let nv = b.add_vertex(leaf);
    b.add_edge(at, nv, el).expect("fresh leaf edge");
    Tree::from_graph(b.build()).expect("adding a leaf keeps a tree a tree")
}

/// All leaf-removal subtrees of `t` (each with one degree-1 vertex and its
/// edge removed), as canonical strings. These are `t`'s maximal proper
/// subtrees; every proper subtree of `t` is contained in one of them.
pub fn leaf_removal_canons(t: &Tree) -> Vec<CanonString> {
    let g = t.graph();
    if g.edge_count() <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for v in g.vertices() {
        if g.degree(v) != 1 {
            continue;
        }
        let mut b = GraphBuilder::with_capacity(g.vertex_count() - 1, g.edge_count() - 1);
        let mut map = vec![VertexId(u32::MAX); g.vertex_count()];
        for w in g.vertices() {
            if w != v {
                map[w.idx()] = b.add_vertex(g.vlabel(w));
            }
        }
        for e in g.edges() {
            if e.u != v && e.v != v {
                b.add_edge(map[e.u.idx()], map[e.v.idx()], e.label)
                    .expect("copying tree edges");
            }
        }
        let sub = Tree::from_graph(b.build()).expect("leaf removal keeps a tree");
        out.push(canonical_string(&sub));
    }
    out
}

/// Mine all σ-frequent subtrees of `db`.
///
/// Dispatches to [`mine_frequent_trees_enum`], which is exact and fastest
/// at the paper's low thresholds (σ(s) = 1 for s ≤ α forces complete
/// enumeration anyway). [`mine_frequent_trees_apriori`] implements the
/// classical level-wise candidate-generation alternative and is kept as a
/// cross-checking oracle and for high-threshold configurations.
pub fn mine_frequent_trees(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise(db, sigma, limits)
}

/// [`mine_frequent_trees`] with per-level metrics recorded on `shard`:
/// a `mine.level{s}` span per level plus `mine.level{s}.candidates` /
/// `.patterns` / `.pruned_by_support` counters (distinct candidate
/// patterns, survivors of the σ(s) filter, and the difference), and the
/// run totals `mine.candidates` (instances generated) and `mine.patterns`.
pub fn mine_frequent_trees_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise_obs(db, sigma, limits, shard)
}

/// Occurrence-list level-wise mining — the default engine, and the "level
/// wise edge-increasing" method the paper prescribes.
///
/// Level s holds every frequent s-edge tree together with **all** of its
/// occurrence instances: `(graph, mapping)` pairs where the mapping embeds
/// a fixed *representative* tree of the pattern. Level s+1 extends each
/// instance by one adjacent acyclic host edge; the extension's identity is
/// just `(attach pattern vertex, edge label, leaf label)`, so the child's
/// canonical string is computed **once per (representative, extension
/// kind)** and shared by every instance — canonicalization cost scales
/// with the number of patterns, not the (much larger) number of instances.
/// Instances are deduplicated by `(graph, edge set)`; supports fall out of
/// the instance lists, so no embedding tests are ever run. Instances of
/// *infrequent* patterns are dropped and never extended — with the σ(s)
/// thresholds growing past α this prunes the (combinatorially dominant)
/// large-and-rare subtrees that plain enumeration would still visit.
///
/// Exactness: every instance of a frequent (s+1)-tree restricts (by
/// removing a leaf edge) to an instance of a frequent s-tree (σ is
/// non-decreasing), which is present at level s, so all instances and all
/// supports are complete.
pub fn mine_frequent_trees_levelwise(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise_obs(db, sigma, limits, &obs::Shard::disabled())
}

/// [`mine_frequent_trees_levelwise`] with per-level metrics on `shard`
/// (see [`mine_frequent_trees_obs`] for the metric names).
pub fn mine_frequent_trees_levelwise_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    use smallvec::SmallVec;
    type Mapping = SmallVec<[u32; 11]>; // pattern vertex -> host vertex
    type EdgeSet = SmallVec<[u32; 10]>; // sorted host edge ids

    assert!(sigma.is_monotone(), "σ(s) must be non-decreasing");
    let mut stats = MiningStats::default();

    /// One instance of a representative tree in a host graph.
    struct Instance {
        gid: u32,
        mapping: Mapping,
        edges: EdgeSet,
    }
    /// A representative tree with its instances. Several representatives
    /// (different vertex numberings) can share one canonical string.
    struct Rep {
        tree: Tree,
        occs: Vec<Instance>,
    }
    type Level = FxHashMap<CanonString, Vec<Rep>>;

    fn canon_support(reps: &[Rep]) -> SupportSet {
        let mut s: SupportSet = reps
            .iter()
            .flat_map(|r| r.occs.iter().map(|o| o.gid))
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    // ---- Level 1: single-edge patterns, one instance per host edge. ----
    let level1_span = shard.span("mine.level1");
    let mut level: Level = FxHashMap::default();
    for (gid, g) in db.iter().enumerate() {
        let gid = gid as u32;
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let (lu, lv) = (g.vlabel(edge.u), g.vlabel(edge.v));
            let tree = single_edge_tree(lu, edge.label, lv);
            // Orient the mapping to the representative (smaller label first).
            let mapping: Mapping = if lu <= lv {
                smallvec::smallvec![edge.u.0, edge.v.0]
            } else {
                smallvec::smallvec![edge.v.0, edge.u.0]
            };
            let canon = canonical_string(&tree);
            let reps = level.entry(canon).or_default();
            if reps.is_empty() {
                reps.push(Rep {
                    tree,
                    occs: Vec::new(),
                });
            }
            reps[0].occs.push(Instance {
                gid,
                mapping,
                edges: smallvec::smallvec![e.0],
            });
        }
    }
    let t1 = sigma.threshold(1).expect("σ(1) must be finite") as usize;
    let level1_candidates = level.len() as u64;
    level.retain(|_, reps| canon_support(reps).len() >= t1);
    shard.add("mine.level1.candidates", level1_candidates);
    shard.add("mine.level1.patterns", level.len() as u64);
    shard.add(
        "mine.level1.pruned_by_support",
        level1_candidates - level.len() as u64,
    );
    drop(level1_span);

    let mut result: Vec<MinedTree> = level
        .iter()
        .map(|(canon, reps)| MinedTree {
            tree: reps[0].tree.clone(),
            canon: canon.clone(),
            support: canon_support(reps),
        })
        .collect();
    if result.len() >= limits.max_patterns {
        stats.truncated = true;
    }

    let mut size = 1usize;
    while size < sigma.eta && !level.is_empty() && result.len() < limits.max_patterns {
        let Some(next_threshold) = sigma.threshold(size + 1) else {
            break;
        };
        let next_threshold = next_threshold as usize;
        let level_name = format!("mine.level{}", size + 1);
        let _level_span = shard.span(&level_name);

        let mut seen: FxHashSet<(u32, EdgeSet)> = FxHashSet::default();
        let mut next: Level = FxHashMap::default();
        let mut truncated = false;

        'ext: for reps in level.values() {
            for rep in reps {
                // (attach vertex, edge label, leaf label) -> (child canon,
                // rep slot within next[canon]); computed once per kind.
                let mut ext_cache: FxHashMap<(u32, u32, u32), (CanonString, usize)> =
                    FxHashMap::default();
                for occ in &rep.occs {
                    let g = &db[occ.gid as usize];
                    for (pv, &hv) in occ.mapping.iter().enumerate() {
                        for &(w, he) in g.neighbors(VertexId(hv)) {
                            if occ.mapping.contains(&w.0) {
                                continue; // cycle or already-used edge
                            }
                            let mut nedges = occ.edges.clone();
                            let pos = match nedges.binary_search(&he.0) {
                                Ok(_) => continue, // parallel guard (unreachable)
                                Err(p) => p,
                            };
                            nedges.insert(pos, he.0);
                            if !seen.insert((occ.gid, nedges.clone())) {
                                continue;
                            }
                            stats.candidates += 1;
                            let el = g.edge(he).label;
                            let lv = g.vlabel(w);
                            let key = (pv as u32, el.0, lv.0);
                            let (canon, slot) = match ext_cache.get(&key) {
                                Some(v) => v.clone(),
                                None => {
                                    let child =
                                        extend_with_leaf(&rep.tree, VertexId(pv as u32), el, lv);
                                    let canon = canonical_string(&child);
                                    let reps = next.entry(canon.clone()).or_default();
                                    reps.push(Rep {
                                        tree: child,
                                        occs: Vec::new(),
                                    });
                                    let v = (canon, reps.len() - 1);
                                    ext_cache.insert(key, v.clone());
                                    v
                                }
                            };
                            let mut nmapping = occ.mapping.clone();
                            nmapping.push(w.0);
                            next.get_mut(&canon).expect("slot registered")[slot]
                                .occs
                                .push(Instance {
                                    gid: occ.gid,
                                    mapping: nmapping,
                                    edges: nedges,
                                });
                            if seen.len() >= limits.max_candidates_per_level {
                                truncated = true;
                                break 'ext;
                            }
                        }
                    }
                }
            }
        }
        if truncated {
            // A mid-level stop would leave supports under-counted, which is
            // unsound for filtering; discard the partial level entirely.
            stats.truncated = true;
            break;
        }
        let level_candidates = next.len() as u64;
        next.retain(|_, reps| canon_support(reps).len() >= next_threshold);
        shard.add(&format!("{level_name}.candidates"), level_candidates);
        shard.add(&format!("{level_name}.patterns"), next.len() as u64);
        shard.add(
            &format!("{level_name}.pruned_by_support"),
            level_candidates - next.len() as u64,
        );
        if next.is_empty() {
            break;
        }
        result.extend(next.iter().map(|(canon, reps)| MinedTree {
            tree: reps[0].tree.clone(),
            canon: canon.clone(),
            support: canon_support(reps),
        }));
        if result.len() >= limits.max_patterns {
            stats.truncated = true;
            result.sort_by(|a, b| {
                (a.size(), std::cmp::Reverse(a.support.len()), &a.canon).cmp(&(
                    b.size(),
                    std::cmp::Reverse(b.support.len()),
                    &b.canon,
                ))
            });
            result.truncate(limits.max_patterns);
            break;
        }
        level = next;
        size += 1;
    }

    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    stats.patterns = result.len();
    shard.add("mine.candidates", stats.candidates as u64);
    shard.add("mine.patterns", stats.patterns as u64);
    (result, stats)
}

/// Enumeration-based mining: for every graph, enumerate all subtree edge
/// subsets up to η edges (each exactly once), canonicalize, and accumulate
/// support sets directly. No candidate generation, no embedding tests —
/// supports are exact by construction.
pub fn mine_frequent_trees_enum(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    assert!(sigma.is_monotone(), "σ(s) must be non-decreasing");
    let mut stats = MiningStats::default();
    struct Entry {
        tree: Tree,
        support: SupportSet,
    }
    let mut patterns: FxHashMap<CanonString, Entry> = FxHashMap::default();
    // Graphs whose enumeration hit the per-graph cap: their membership in
    // any pattern is unknown, so they are added to *every* support set.
    // That over-approximation is sound — the index build re-validates each
    // (feature, graph) pair when computing center positions.
    let mut overflow: Vec<u32> = Vec::new();
    for (gid, g) in db.iter().enumerate() {
        let gid = gid as u32;
        let mut enumerated = 0usize;
        let flow = graph_core::for_each_subtree_edge_subset(g, sigma.eta, |edges| {
            enumerated += 1;
            stats.candidates += 1;
            let sub = graph_core::edge_subgraph(g, edges);
            let tree = Tree::from_graph(sub.graph).expect("subtree enumeration yields trees");
            let canon = canonical_string(&tree);
            match patterns.get_mut(&canon) {
                Some(e) => {
                    if e.support.last() != Some(&gid) {
                        e.support.push(gid);
                    }
                }
                None => {
                    patterns.insert(
                        canon,
                        Entry {
                            tree,
                            support: vec![gid],
                        },
                    );
                }
            }
            if enumerated >= limits.max_candidates_per_level {
                stats.truncated = true;
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        if flow.is_break() {
            overflow.push(gid);
        }
    }
    let mut result: Vec<MinedTree> = patterns
        .into_iter()
        .filter_map(|(canon, e)| {
            let thr = sigma.threshold(e.tree.edge_count())? as usize;
            let mut support = e.support;
            if !overflow.is_empty() {
                support.extend(overflow.iter().copied());
                support.sort_unstable();
                support.dedup();
            }
            (support.len() >= thr).then_some(MinedTree {
                tree: e.tree,
                canon,
                support,
            })
        })
        .collect();
    if result.len() > limits.max_patterns {
        stats.truncated = true;
        // Keep the most frequent patterns of each size (deterministic).
        result.sort_by(|a, b| {
            (a.size(), std::cmp::Reverse(a.support.len()), &a.canon).cmp(&(
                b.size(),
                std::cmp::Reverse(b.support.len()),
                &b.canon,
            ))
        });
        result.truncate(limits.max_patterns);
    }
    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    stats.patterns = result.len();
    (result, stats)
}

/// Level-wise apriori mining (candidate generation + embedding-test support
/// counting). Kept as an oracle for [`mine_frequent_trees_enum`] and for
/// high-threshold settings where candidate pruning pays off.
pub fn mine_frequent_trees_apriori(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    assert!(
        sigma.is_monotone(),
        "σ(s) must be non-decreasing for apriori mining"
    );
    let mut stats = MiningStats::default();
    let summaries: Vec<GraphSummary> = db.iter().map(GraphSummary::new).collect();

    // ---- Level 1: single-edge trees by direct scan. ----
    let mut level: FxHashMap<CanonString, MinedTree> = FxHashMap::default();
    for (gid, g) in db.iter().enumerate() {
        let mut seen_here: FxHashSet<CanonString> = FxHashSet::default();
        for e in g.edges() {
            let t = single_edge_tree(g.vlabel(e.u), e.label, g.vlabel(e.v));
            let canon = canonical_string(&t);
            if !seen_here.insert(canon.clone()) {
                continue;
            }
            level
                .entry(canon.clone())
                .or_insert_with(|| MinedTree {
                    tree: t,
                    canon,
                    support: Vec::new(),
                })
                .support
                .push(gid as u32);
        }
    }
    let t1 = sigma.threshold(1).expect("σ(1) must be finite") as usize;
    level.retain(|_, m| m.support.len() >= t1);

    // Global extension alphabet: (attach vertex label, edge label, leaf
    // vertex label), both directions of every observed edge.
    let mut triples: FxHashSet<(VLabel, ELabel, VLabel)> = FxHashSet::default();
    for g in db {
        for e in g.edges() {
            let a = g.vlabel(e.u);
            let b = g.vlabel(e.v);
            triples.insert((a, e.label, b));
            triples.insert((b, e.label, a));
        }
    }
    let mut triples: Vec<_> = triples.into_iter().collect();
    triples.sort_unstable();

    let mut result: Vec<MinedTree> = level.values().cloned().collect();
    stats.patterns = result.len();

    // ---- Levels 2..=eta ----
    let mut size = 1usize;
    while size < sigma.eta {
        let Some(next_threshold) = sigma.threshold(size + 1) else {
            break;
        };
        let next_threshold = next_threshold as usize;
        let mut candidates: FxHashMap<CanonString, Tree> = FxHashMap::default();
        'outer: for m in level.values() {
            let g = m.tree.graph();
            for at in g.vertices() {
                let at_label = g.vlabel(at);
                for &(a, el, leaf) in triples.iter() {
                    if a != at_label {
                        continue;
                    }
                    let cand = extend_with_leaf(&m.tree, at, el, leaf);
                    let canon = canonical_string(&cand);
                    if candidates.contains_key(&canon) {
                        continue;
                    }
                    stats.candidates += 1;
                    candidates.insert(canon, cand);
                    if candidates.len() >= limits.max_candidates_per_level {
                        stats.truncated = true;
                        break 'outer;
                    }
                }
            }
        }

        let mut next_level: FxHashMap<CanonString, MinedTree> = FxHashMap::default();
        for (canon, cand) in candidates {
            // Apriori: all maximal proper subtrees must be frequent.
            let subs = leaf_removal_canons(&cand);
            let mut sub_supports: Vec<&[u32]> = Vec::with_capacity(subs.len());
            let mut pruned = false;
            for s in &subs {
                match level.get(s) {
                    Some(m) => sub_supports.push(&m.support),
                    None => {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned {
                stats.apriori_pruned += 1;
                continue;
            }
            let candidates_set = intersect_many(&sub_supports, db.len());
            if candidates_set.len() < next_threshold {
                continue;
            }
            // Exact support by embedding tests.
            let mut support: SupportSet = Vec::new();
            let remaining = candidates_set.len();
            for (i, &gid) in candidates_set.iter().enumerate() {
                // Not enough graphs left to reach the threshold: bail.
                if support.len() + (remaining - i) < next_threshold {
                    break;
                }
                let g = &db[gid as usize];
                if !summaries[gid as usize].may_contain(cand.graph()) {
                    continue;
                }
                stats.embed_tests += 1;
                if graph_core::is_subgraph_isomorphic(cand.graph(), g) {
                    support.push(gid);
                }
            }
            if support.len() >= next_threshold {
                next_level.insert(
                    canon.clone(),
                    MinedTree {
                        tree: cand,
                        canon,
                        support,
                    },
                );
            }
        }

        if next_level.is_empty() {
            break;
        }
        result.extend(next_level.values().cloned());
        stats.patterns = result.len();
        if result.len() >= limits.max_patterns {
            stats.truncated = true;
            break;
        }
        level = next_level;
        size += 1;
    }

    // Deterministic output order: by size then canonical string.
    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    (result, stats)
}

/// Shrink a mined feature set (paper §4.1.2): remove every tree `r` with
/// `|⋂ᵢ D_rᵢ| / |D_r| ≤ γ`, where the `rᵢ` are `r`'s proper subtrees —
/// such an `r` adds little beyond its subtrees' intersection.
///
/// The intersection over all proper subtrees equals the intersection over
/// the maximal (leaf-removal) subtrees, since every proper subtree contains
/// no more information than some maximal one. Decisions are taken against
/// the *input* set, so removal order does not matter. Single-edge trees are
/// always kept (completeness).
pub fn shrink_features(mined: Vec<MinedTree>, gamma: f64) -> Vec<MinedTree> {
    let by_canon: FxHashMap<CanonString, SupportSet> = mined
        .iter()
        .map(|m| (m.canon.clone(), m.support.clone()))
        .collect();
    mined
        .into_iter()
        .filter(|m| {
            if m.size() <= 1 {
                return true;
            }
            let subs = leaf_removal_canons(&m.tree);
            let sets: Vec<&[u32]> = subs
                .iter()
                .filter_map(|c| by_canon.get(c).map(|s| s.as_slice()))
                .collect();
            if sets.len() != subs.len() {
                // Some subtree was not mined (only possible when mining was
                // truncated); keep r conservatively.
                return true;
            }
            let inter = intersect_many(&sets, usize::MAX);
            let ratio = inter.len() as f64 / m.support.len() as f64;
            ratio > gamma
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    /// The running-example-style database: simple labeled graphs.
    fn tiny_db() -> Vec<Graph> {
        vec![
            // triangle a-a-b with labels
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            // path a-a-b
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            // star
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ]
    }

    fn uniform_sigma(eta: usize) -> SigmaFn {
        SigmaFn {
            alpha: eta,
            beta: 1.0,
            eta,
        }
    }

    #[test]
    fn level1_counts_distinct_edges() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(1), &MiningLimits::default());
        // Distinct single-edge trees: (0,0,0), (0,0,1), (0,1,1)
        assert_eq!(mined.len(), 3);
        for m in &mined {
            assert_eq!(m.size(), 1);
            assert!(!m.support.is_empty());
        }
        // (0-0 with edge 0) appears in all three graphs
        let aa = mined
            .iter()
            .find(|m| {
                let g = m.tree.graph();
                g.vlabel(VertexId(0)).0 == 0 && g.vlabel(VertexId(1)).0 == 0
            })
            .unwrap();
        assert_eq!(aa.support, vec![0, 1, 2]);
    }

    #[test]
    fn supports_are_exact() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(3), &MiningLimits::default());
        for m in &mined {
            let brute: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(m.tree.graph(), g))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(m.support, brute, "wrong support for {:?}", m.tree);
        }
    }

    #[test]
    fn mining_is_complete_at_threshold_one() {
        // Every subtree (up to eta edges) of every graph must be mined.
        let db = tiny_db();
        let eta = 3;
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(eta), &MiningLimits::default());
        let mined_canons: FxHashSet<CanonString> = mined.iter().map(|m| m.canon.clone()).collect();
        for g in &db {
            let _ = graph_core::for_each_subtree_edge_subset(g, eta, |edges| {
                let sub = graph_core::edge_subgraph(g, edges);
                let t = Tree::from_graph(sub.graph).expect("subtree enumeration yields trees");
                let c = canonical_string(&t);
                assert!(mined_canons.contains(&c), "missing subtree {t:?}");
                std::ops::ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn threshold_filters_rare_patterns() {
        let db = tiny_db();
        let sigma = SigmaFn {
            alpha: 0,
            beta: 0.0,
            eta: 2,
        };
        // σ(s) = 1 + 0 = 1 for s ≤ 2 — wait, alpha=0 means formula applies:
        // σ(1) = 1, σ(2) = 1. Instead use beta to demand support 3:
        let sigma3 = SigmaFn {
            alpha: 0,
            beta: 2.0,
            eta: 2,
        };
        // σ(1) = 1 + 2*1 - 0 = 3, σ(2) = 5
        assert_eq!(sigma3.threshold(1), Some(3));
        let (mined, _) = mine_frequent_trees(&db, &sigma3, &MiningLimits::default());
        for m in &mined {
            assert!(m.support.len() >= 3);
        }
        // exactly the (0,0,l0) and (0,1,l0) edges appear in all 3 graphs
        assert_eq!(mined.len(), 2);
        let _ = sigma;
    }

    #[test]
    fn eta_caps_pattern_size() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        assert!(mined.iter().all(|m| m.size() <= 2));
    }

    #[test]
    fn shrinking_removes_redundant_trees() {
        // Database where a 2-edge path's support equals the intersection of
        // its single-edge subtrees' supports → ratio 1 ≤ γ, removed.
        let db = vec![
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
        ];
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        let before = mined.len();
        let shrunk = shrink_features(mined, 1.0);
        assert!(shrunk.len() < before);
        // All single-edge trees stay.
        assert!(shrunk.iter().all(|m| m.size() == 1));
    }

    #[test]
    fn shrinking_keeps_discriminative_trees() {
        // 0-1 and 1-2 edges both appear in g0 and g1, but the path 0-1-2
        // only in g0 → ratio 2/1 = 2 > γ=1.5, kept.
        let db = vec![
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 2, 1], &[(0, 1, 0), (2, 3, 0)]),
        ];
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        let shrunk = shrink_features(mined, 1.5);
        assert!(
            shrunk.iter().any(|m| m.size() == 2),
            "discriminative 2-edge tree should survive"
        );
    }

    #[test]
    fn leaf_removals_of_path() {
        let t = tree_core::tree_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]);
        let subs = leaf_removal_canons(&t);
        assert_eq!(subs.len(), 2);
        // they are the 0-1 and 1-2 edges, distinct
        assert_ne!(subs[0], subs[1]);
    }

    #[test]
    fn stats_populated() {
        let db = tiny_db();
        let (_, stats) = mine_frequent_trees(&db, &uniform_sigma(3), &MiningLimits::default());
        assert!(stats.patterns > 0);
        assert!(stats.candidates > 0);
        assert!(!stats.truncated);
    }

    #[test]
    fn obs_counters_match_stats() {
        let db = tiny_db();
        let shard = obs::Shard::detached(true);
        let (mined, stats) =
            mine_frequent_trees_obs(&db, &uniform_sigma(3), &MiningLimits::default(), &shard);
        let set = shard.into_set();
        assert_eq!(set.counter("mine.patterns"), stats.patterns as u64);
        assert_eq!(set.counter("mine.candidates"), stats.candidates as u64);
        assert_eq!(set.counter("mine.level1.patterns"), 3);
        assert!(set.span("mine.level1").is_some());
        assert!(set.span("mine.level2").is_some());
        // Per-level pattern counts sum to the total.
        let per_level: u64 = (1..=3)
            .map(|s| set.counter(&format!("mine.level{s}.patterns")))
            .sum();
        assert_eq!(per_level, mined.len() as u64);
    }

    #[test]
    fn pattern_cap_truncates() {
        let db = tiny_db();
        let limits = MiningLimits {
            max_patterns: 2,
            max_candidates_per_level: 1_000_000,
        };
        let (mined, stats) = mine_frequent_trees(&db, &uniform_sigma(5), &limits);
        assert!(stats.truncated);
        // The cap stops mining after the first level that crosses it, so at
        // most two levels were produced.
        assert!(mined.iter().all(|m| m.size() <= 2));
    }
}

#[cfg(test)]
mod enum_vs_apriori {
    use super::*;
    use graph_core::graph_from;

    #[test]
    fn miners_agree_on_small_databases() {
        let dbs = vec![
            vec![
                graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
                graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
                graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            ],
            vec![
                graph_from(&[2, 1, 0, 1], &[(0, 1, 0), (1, 2, 1), (2, 3, 0), (3, 0, 1)]),
                graph_from(&[1, 1, 2], &[(0, 1, 1), (1, 2, 0)]),
            ],
        ];
        let sigmas = vec![
            SigmaFn {
                alpha: 3,
                beta: 1.0,
                eta: 3,
            },
            SigmaFn {
                alpha: 1,
                beta: 1.0,
                eta: 4,
            },
            SigmaFn {
                alpha: 0,
                beta: 2.0,
                eta: 2,
            },
        ];
        for db in &dbs {
            for sigma in &sigmas {
                let (a, _) = mine_frequent_trees_enum(db, sigma, &MiningLimits::default());
                let (b, _) = mine_frequent_trees_apriori(db, sigma, &MiningLimits::default());
                let (c, _) = mine_frequent_trees_levelwise(db, sigma, &MiningLimits::default());
                let mut kc: Vec<(CanonString, SupportSet)> =
                    c.into_iter().map(|m| (m.canon, m.support)).collect();
                kc.sort();
                let mut ka: Vec<(CanonString, SupportSet)> =
                    a.into_iter().map(|m| (m.canon, m.support)).collect();
                let mut kb: Vec<(CanonString, SupportSet)> =
                    b.into_iter().map(|m| (m.canon, m.support)).collect();
                ka.sort();
                kb.sort();
                assert_eq!(ka, kb, "enum vs apriori disagree for sigma {sigma:?}");
                assert_eq!(ka, kc, "enum vs levelwise disagree for sigma {sigma:?}");
            }
        }
    }

    #[test]
    fn enum_truncation_overapproximates_but_never_undercounts() {
        let db = vec![
            graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            graph_from(&[0, 0], &[(0, 1, 0)]),
        ];
        let limits = MiningLimits {
            max_patterns: usize::MAX,
            max_candidates_per_level: 3, // graph 0 will overflow
        };
        let sigma = SigmaFn {
            alpha: 3,
            beta: 1.0,
            eta: 3,
        };
        let (mined, stats) = mine_frequent_trees_enum(&db, &sigma, &limits);
        assert!(stats.truncated);
        // every pattern's true support must be a subset of the reported one
        for m in &mined {
            for (gid, g) in db.iter().enumerate() {
                if graph_core::is_subgraph_isomorphic(m.tree.graph(), g) {
                    assert!(
                        m.support.contains(&(gid as u32)),
                        "undercounted support under truncation"
                    );
                }
            }
        }
    }
}
