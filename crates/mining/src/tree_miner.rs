//! Level-wise frequent subtree mining (paper §4.1.3).
//!
//! "First, all the frequent trees according to the σ function are
//! discovered by any level wise edge-increasing graph mining method."
//!
//! We use an apriori-style pattern-growth:
//!
//! 1. level 1 = all distinct single-edge trees, with exact support sets
//!    from one database scan;
//! 2. level s+1 candidates = each level-s tree extended by one leaf edge
//!    using a globally observed `(attach label, edge label, leaf label)`
//!    triple, deduplicated by canonical string;
//! 3. apriori pruning: every leaf-removal subtree of a candidate must be
//!    frequent at the previous level (sound because σ is non-decreasing),
//!    and the candidate's support is a subset of the intersection of those
//!    subtrees' supports;
//! 4. exact support counting by subtree-embedding tests over that
//!    intersection.
//!
//! This is deliberately complete: with σ(s) = 1 for s ≤ α (the paper's
//! completeness requirement) *every* distinct subtree up to α edges is
//! found.

use crate::support::{intersect_many, SigmaFn, SupportSet};
use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use rustc_hash::{FxHashMap, FxHashSet};
use tree_core::{canonical_string, CanonString, Tree};

/// A mined frequent tree with its exact support set.
#[derive(Clone, Debug)]
pub struct MinedTree {
    /// The pattern.
    pub tree: Tree,
    /// Canonical string (index key).
    pub canon: CanonString,
    /// Sorted ids of database graphs containing the pattern.
    pub support: SupportSet,
}

impl MinedTree {
    /// Edge size of the pattern.
    pub fn size(&self) -> usize {
        self.tree.edge_count()
    }
}

/// Safety limits for mining (the paper tunes σ parameters "until the
/// feature tree set can fit in the memory"; these are the hard stops).
#[derive(Clone, Copy, Debug)]
pub struct MiningLimits {
    /// Hard cap on the total number of patterns kept across levels. The
    /// level-wise miner cuts in `(size, canonical string)` order — the
    /// smallest patterns in canonical order survive — which makes the
    /// truncated set independent of scan order and thread count.
    pub max_patterns: usize,
    /// Hard cap on candidates generated per level. The level-wise miner
    /// discards a level entirely when its distinct-instance count reaches
    /// this cap (partial supports would be unsound to filter on).
    pub max_candidates_per_level: usize,
}

impl Default for MiningLimits {
    fn default() -> Self {
        Self {
            max_patterns: 200_000,
            max_candidates_per_level: 20_000_000,
        }
    }
}

/// Statistics of one mining run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Patterns found per level are summed here.
    pub patterns: usize,
    /// Candidates generated (before support counting).
    pub candidates: usize,
    /// Candidates rejected by the apriori subtree check.
    pub apriori_pruned: usize,
    /// Embedding tests performed.
    pub embed_tests: usize,
    /// Whether a hard limit stopped mining early.
    pub truncated: bool,
}

/// Cheap per-graph summaries used to skip hopeless embedding tests.
struct GraphSummary {
    vlabel_counts: FxHashMap<VLabel, u32>,
    triple_counts: FxHashMap<(VLabel, ELabel, VLabel), u32>,
}

impl GraphSummary {
    fn new(g: &Graph) -> Self {
        let mut vlabel_counts = FxHashMap::default();
        for v in g.vertices() {
            *vlabel_counts.entry(g.vlabel(v)).or_insert(0) += 1;
        }
        let mut triple_counts = FxHashMap::default();
        for e in g.edges() {
            let a = g.vlabel(e.u);
            let b = g.vlabel(e.v);
            *triple_counts
                .entry((a.min(b), e.label, a.max(b)))
                .or_insert(0) += 1;
        }
        Self {
            vlabel_counts,
            triple_counts,
        }
    }

    fn may_contain(&self, p: &Graph) -> bool {
        let mut need_v: FxHashMap<VLabel, u32> = FxHashMap::default();
        for v in p.vertices() {
            *need_v.entry(p.vlabel(v)).or_insert(0) += 1;
        }
        for (l, n) in need_v {
            if self.vlabel_counts.get(&l).copied().unwrap_or(0) < n {
                return false;
            }
        }
        let mut need_e: FxHashMap<(VLabel, ELabel, VLabel), u32> = FxHashMap::default();
        for e in p.edges() {
            let a = p.vlabel(e.u);
            let b = p.vlabel(e.v);
            *need_e.entry((a.min(b), e.label, a.max(b))).or_insert(0) += 1;
        }
        for (t, n) in need_e {
            if self.triple_counts.get(&t).copied().unwrap_or(0) < n {
                return false;
            }
        }
        true
    }
}

/// Build the canonical single-edge tree for a labeled edge.
fn single_edge_tree(a: VLabel, el: ELabel, b: VLabel) -> Tree {
    let (a, b) = (a.min(b), a.max(b));
    let mut gb = GraphBuilder::with_capacity(2, 1);
    let u = gb.add_vertex(a);
    let v = gb.add_vertex(b);
    gb.add_edge(u, v, el).expect("single edge");
    Tree::from_graph(gb.build()).expect("an edge is a tree")
}

/// Extend `t` with a new leaf labeled `leaf` attached to vertex `at` via an
/// edge labeled `el`.
fn extend_with_leaf(t: &Tree, at: VertexId, el: ELabel, leaf: VLabel) -> Tree {
    let g = t.graph();
    let mut b = GraphBuilder::with_capacity(g.vertex_count() + 1, g.edge_count() + 1);
    for v in g.vertices() {
        b.add_vertex(g.vlabel(v));
    }
    for e in g.edges() {
        b.add_edge(e.u, e.v, e.label).expect("copying a tree");
    }
    let nv = b.add_vertex(leaf);
    b.add_edge(at, nv, el).expect("fresh leaf edge");
    Tree::from_graph(b.build()).expect("adding a leaf keeps a tree a tree")
}

/// All leaf-removal subtrees of `t` (each with one degree-1 vertex and its
/// edge removed), as canonical strings. These are `t`'s maximal proper
/// subtrees; every proper subtree of `t` is contained in one of them.
pub fn leaf_removal_canons(t: &Tree) -> Vec<CanonString> {
    let g = t.graph();
    if g.edge_count() <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for v in g.vertices() {
        if g.degree(v) != 1 {
            continue;
        }
        let mut b = GraphBuilder::with_capacity(g.vertex_count() - 1, g.edge_count() - 1);
        let mut map = vec![VertexId(u32::MAX); g.vertex_count()];
        for w in g.vertices() {
            if w != v {
                map[w.idx()] = b.add_vertex(g.vlabel(w));
            }
        }
        for e in g.edges() {
            if e.u != v && e.v != v {
                b.add_edge(map[e.u.idx()], map[e.v.idx()], e.label)
                    .expect("copying tree edges");
            }
        }
        let sub = Tree::from_graph(b.build()).expect("leaf removal keeps a tree");
        out.push(canonical_string(&sub));
    }
    out
}

/// Mine all σ-frequent subtrees of `db`.
///
/// Dispatches to the single-threaded [`mine_frequent_trees_levelwise`];
/// use [`mine_frequent_trees_threads`] to fan the level-wise scan out over
/// worker threads (bit-for-bit identical output at any thread count).
/// [`mine_frequent_trees_enum`] and [`mine_frequent_trees_apriori`] are
/// kept as cross-checking oracles and for high-threshold configurations.
pub fn mine_frequent_trees(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise(db, sigma, limits)
}

/// [`mine_frequent_trees`] with the level-wise scan parallelized over up to
/// `threads` workers. The mined patterns, their representative trees,
/// support sets, and [`MiningStats`] are **bit-for-bit identical at any
/// thread count** — see [`mine_frequent_trees_threads_obs`] for the merge
/// contract.
pub fn mine_frequent_trees_threads(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    threads: usize,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_threads_obs(db, sigma, limits, threads, &obs::Shard::disabled())
}

/// [`mine_frequent_trees`] with per-level metrics recorded on `shard`:
/// a `mine.level{s}` span per level plus `mine.level{s}.candidates` /
/// `.patterns` / `.pruned_by_support` counters (distinct candidate
/// patterns, survivors of the σ(s) filter, and the difference), and the
/// run totals `mine.candidates` (instances generated) and `mine.patterns`.
pub fn mine_frequent_trees_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise_obs(db, sigma, limits, shard)
}

/// Occurrence-list level-wise mining — the default engine, and the "level
/// wise edge-increasing" method the paper prescribes.
///
/// Level s holds every frequent s-edge tree together with **all** of its
/// occurrence instances: `(graph, mapping)` pairs where the mapping embeds
/// a fixed *representative* tree of the pattern. Level s+1 extends each
/// instance by one adjacent acyclic host edge; the extension's identity is
/// just `(attach pattern vertex, edge label, leaf label)`, so the child's
/// canonical string is computed **once per (representative, extension
/// kind)** and shared by every instance — canonicalization cost scales
/// with the number of patterns, not the (much larger) number of instances.
/// Instances are deduplicated by `(graph, edge set)`; supports fall out of
/// the instance lists, so no embedding tests are ever run. Instances of
/// *infrequent* patterns are dropped and never extended — with the σ(s)
/// thresholds growing past α this prunes the (combinatorially dominant)
/// large-and-rare subtrees that plain enumeration would still visit.
///
/// Exactness: every instance of a frequent (s+1)-tree restricts (by
/// removing a leaf edge) to an instance of a frequent s-tree (σ is
/// non-decreasing), which is present at level s, so all instances and all
/// supports are complete.
pub fn mine_frequent_trees_levelwise(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_levelwise_obs(db, sigma, limits, &obs::Shard::disabled())
}

/// [`mine_frequent_trees_levelwise`] with per-level metrics on `shard`
/// (see [`mine_frequent_trees_obs`] for the metric names).
pub fn mine_frequent_trees_levelwise_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    mine_frequent_trees_threads_obs(db, sigma, limits, 1, shard)
}

/// [`mine_frequent_trees_threads`] with per-level metrics on `shard` (see
/// [`mine_frequent_trees_obs`] for the deterministic metric names; workers
/// additionally record `engine.mine.workers` and `engine.mine.worker_wall`
/// spans, which describe execution shape and vary with `threads`).
///
/// # Determinism contract
///
/// The output — patterns, representative trees, support sets, instance
/// lists, [`MiningStats`], and every non-`engine.*` counter — is a pure
/// function of `(db, sigma, limits)`, independent of `threads` and of
/// scheduling. The construction:
///
/// - **Partition by host graph.** Instance dedup is keyed on
///   `(gid, edge set)`, and every occurrence of a gid lives in exactly one
///   worker's gid-blocks, so worker-local dedup sets are globally complete
///   and collision-free; the total instance count is partition-independent.
/// - **Canonical candidate identity.** An extension's *kind* is
///   `ExtKey = (pattern idx, rep idx, attach vertex, edge label, leaf
///   label)`. The child tree for a kind is derived from the (shared,
///   immutable) parent representative, so every worker computes the same
///   child tree and canonical string for the same key — unlike the serial
///   first-discovery scheme, no state depends on scan order.
/// - **Min-reduction for shared instances.** When one `(gid, edge set)`
///   instance is reachable via several kinds, all of them are observed by
///   the *same* worker (same gid), which keeps the lexicographically
///   smallest `(ExtKey, parent occurrence index, leaf vertex)` — an
///   order-independent reduction over values that are themselves
///   thread-count-invariant (parent occurrence lists are part of the
///   previous level's deterministic output).
/// - **Canonical merge.** Each worker returns its records sorted by
///   `(ExtKey, gid, edge set)` plus a per-key range index; a k-way walk
///   over those indexes merges the per-worker spans of each key. Candidates
///   are grouped by canonical string (a stable sort, preserving `ExtKey`
///   order among representatives), supports sorted and deduped, and
///   occurrence lists materialized (and sorted by `(gid, edge set)`) only
///   for candidates that survive the support filter.
///
/// Truncation is deterministic too: `max_candidates_per_level` discards the
/// whole level when the *total* distinct-instance count reaches the cap
/// (workers early-stop on their local counts purely as an optimization, and
/// a discarded level contributes nothing to counters), and `max_patterns`
/// cuts in `(size, canonical string)` order — see `MiningLimits`.
pub fn mine_frequent_trees_threads_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    threads: usize,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    let pool = graph_core::par::Pool::new(threads.max(1));
    mine_frequent_trees_pool_obs(db, sigma, limits, &pool, shard)
}

/// [`mine_frequent_trees_threads_obs`] dispatching every parallel pass —
/// the per-level extension scans, the canonical-string pass, and occurrence
/// materialization — as seats on one persistent
/// [`graph_core::par::Pool`], so a multi-level mining run reuses a single
/// set of worker threads instead of forking fresh ones per level (and a
/// caller can share the pool with center extraction and query serving).
/// The canonical-string pass runs *from inside* the level loop on whatever
/// thread dispatched the build — re-entrant dispatch is safe because the
/// pool's dispatcher claims its own job's seats. Determinism contract
/// identical to the threads version: output and non-`engine.*` counters
/// depend only on `(db, sigma, limits)`, never on the pool size.
pub fn mine_frequent_trees_pool_obs(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
    pool: &graph_core::par::Pool,
    shard: &obs::Shard,
) -> (Vec<MinedTree>, MiningStats) {
    use smallvec::SmallVec;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    type Mapping = SmallVec<[u32; 11]>; // pattern vertex -> host vertex
    type EdgeSet = SmallVec<[u32; 10]>; // sorted host edge ids
    /// Identity of an extension kind: (pattern index, representative index,
    /// attach pattern vertex, edge label, leaf label). Two instances with
    /// the same key have isomorphic children via the same parent embedding
    /// shape, so the child tree/canon is a function of the key alone.
    type ExtKey = (u32, u32, u32, u32, u32);

    assert!(sigma.is_monotone(), "σ(s) must be non-decreasing");
    let mut stats = MiningStats::default();

    /// One instance of a representative tree in a host graph.
    #[derive(Clone)]
    struct Instance {
        gid: u32,
        mapping: Mapping,
        edges: EdgeSet,
    }
    /// A representative tree with its instances, occs sorted by
    /// `(gid, edges)`. Several representatives (different vertex
    /// numberings) can share one canonical string.
    struct Rep {
        tree: Tree,
        occs: Vec<Instance>,
    }
    /// One candidate extension record. The child mapping is *not* stored:
    /// it is `parent.occs[occ].mapping + leaf`, rebuilt once for the
    /// records that survive dedup. Keeping records flat (edge sets stay
    /// inline in the `SmallVec`) means the hot loop never touches the heap
    /// per candidate.
    struct Cand {
        gid: u32,
        edges: EdgeSet,
        key: ExtKey,
        /// Index into the parent representative's occurrence list.
        occ: u32,
        /// Host vertex id of the new leaf.
        leaf: u32,
    }
    /// One worker's extension output for a level: records deduplicated by
    /// `(gid, edges)` and sorted by `(key, gid, edges)`, plus the record
    /// range of each distinct key.
    struct ExtOut {
        cands: Vec<Cand>,
        groups: Vec<(ExtKey, u32, u32)>,
        hit_limit: bool,
    }
    /// A distinct extension kind after the merge: per-worker record spans
    /// `(worker, start, end)` plus the (key-derived) child tree and canon.
    /// Occurrences are materialized from the spans only for candidates
    /// that survive the support filter.
    struct Group {
        key: ExtKey,
        spans: SmallVec<[(u8, u32, u32); 4]>,
        canon: Option<CanonString>,
        tree: Option<Tree>,
    }
    /// A surviving representative before occurrence materialization.
    struct RepBuild {
        tree: Tree,
        gidx: u32,
        occs: Vec<Instance>,
    }

    fn sort_occs(occs: &mut [Instance]) {
        occs.sort_unstable_by(|a, b| (a.gid, a.edges.as_slice()).cmp(&(b.gid, b.edges.as_slice())));
    }
    /// Support of occs sorted by gid: linear dedup.
    fn sorted_support(occs: &[Instance]) -> SupportSet {
        let mut s: SupportSet = occs.iter().map(|o| o.gid).collect();
        s.dedup();
        s
    }

    // Worker/block layout. Workers self-schedule gid-blocks off an atomic
    // counter; a few blocks per worker evens out per-graph skew without
    // letting the per-block pattern sweep dominate. The block layout never
    // affects the output (see the determinism contract above).
    let workers = pool.parallelism().max(1).min(db.len().max(1));
    let nblocks = (workers * 4).min(db.len()).max(1);
    let block_len = db.len().div_ceil(nblocks).max(1);
    let block_bounds = move |b: usize, len: usize| (b * block_len, ((b + 1) * block_len).min(len));

    // ---- Level 1: single-edge patterns, one instance per host edge. ----
    let level1_span = shard.span("mine.level1");
    let next_block = AtomicUsize::new(0);
    let outs = pool.fork_join_obs(workers, shard, |_rank, wshard| {
        let _wall = wshard.span("engine.mine.worker_wall");
        wshard.add("engine.mine.workers", 1);
        let mut local: FxHashMap<CanonString, (Tree, Vec<Instance>)> = FxHashMap::default();
        // (smaller label, edge label, larger label) -> canon, once per kind.
        let mut canon_cache: FxHashMap<(u32, u32, u32), CanonString> = FxHashMap::default();
        loop {
            let b = next_block.fetch_add(1, Ordering::Relaxed);
            if b >= nblocks {
                break;
            }
            let (lo, hi) = block_bounds(b, db.len());
            for (gid, g) in db.iter().enumerate().take(hi).skip(lo) {
                let gid = gid as u32;
                for e in g.edge_ids() {
                    let edge = g.edge(e);
                    let (lu, lv) = (g.vlabel(edge.u), g.vlabel(edge.v));
                    // Orient the mapping to the representative (smaller
                    // label first).
                    let mapping: Mapping = if lu <= lv {
                        smallvec::smallvec![edge.u.0, edge.v.0]
                    } else {
                        smallvec::smallvec![edge.v.0, edge.u.0]
                    };
                    let triple = (lu.min(lv).0, edge.label.0, lu.max(lv).0);
                    let canon = canon_cache
                        .entry(triple)
                        .or_insert_with(|| canonical_string(&single_edge_tree(lu, edge.label, lv)))
                        .clone();
                    local
                        .entry(canon)
                        .or_insert_with(|| (single_edge_tree(lu, edge.label, lv), Vec::new()))
                        .1
                        .push(Instance {
                            gid,
                            mapping,
                            edges: smallvec::smallvec![e.0],
                        });
                }
            }
        }
        local
    });
    // Canonical merge: BTreeMap orders patterns by canon; the single-edge
    // representative tree is identical across workers by construction.
    let mut merged: BTreeMap<CanonString, (Tree, Vec<Instance>)> = BTreeMap::new();
    for local in outs {
        for (canon, (tree, mut occs)) in local {
            merged
                .entry(canon)
                .or_insert_with(|| (tree, Vec::new()))
                .1
                .append(&mut occs);
        }
    }
    let mut entries: Vec<(CanonString, Tree, Vec<Instance>)> = merged
        .into_iter()
        .map(|(canon, (tree, occs))| (canon, tree, occs))
        .collect();
    pool.for_each_mut(&mut entries, |(_, _, occs)| sort_occs(occs));

    let t1 = sigma.threshold(1).expect("σ(1) must be finite") as usize;
    let level1_candidates = entries.len() as u64;
    // Surviving patterns in canon order; each holds its representatives.
    let mut level: Vec<Vec<Rep>> = Vec::new();
    let mut result: Vec<MinedTree> = Vec::new();
    for (canon, tree, occs) in entries {
        let support = sorted_support(&occs);
        if support.len() < t1 {
            continue;
        }
        result.push(MinedTree {
            tree: tree.clone(),
            canon,
            support,
        });
        level.push(vec![Rep { tree, occs }]);
    }
    shard.add("mine.level1.candidates", level1_candidates);
    shard.add("mine.level1.patterns", level.len() as u64);
    shard.add(
        "mine.level1.pruned_by_support",
        level1_candidates - level.len() as u64,
    );
    drop(level1_span);

    if result.len() >= limits.max_patterns {
        stats.truncated = true;
        result.truncate(limits.max_patterns);
    }

    let mut size = 1usize;
    while size < sigma.eta && !level.is_empty() && result.len() < limits.max_patterns {
        let Some(next_threshold) = sigma.threshold(size + 1) else {
            break;
        };
        let next_threshold = next_threshold as usize;
        let level_name = format!("mine.level{}", size + 1);
        let _level_span = shard.span(&level_name);

        // ---- Parallel extension scan over gid-blocks. ----
        //
        // Workers emit flat candidate records into one growable vec — no
        // per-worker hash maps, no per-candidate heap objects (edge sets
        // stay inline in their `SmallVec`). Each block's segment is sorted
        // and min-reduced in place; blocks hold whole gids, so the
        // per-segment dedup is globally exact. This shape is what lets the
        // fan-out scale: per-instance heap churn at this volume turns into
        // mmap/munmap traffic that serializes the build on kernel time.
        let level_ref = &level;
        let next_block = AtomicUsize::new(0);
        let outs = pool.fork_join_obs(workers, shard, |_rank, wshard| {
            let _wall = wshard.span("engine.mine.worker_wall");
            wshard.add("engine.mine.workers", 1);
            let mut cands: Vec<Cand> = Vec::new();
            let mut hit_limit = false;
            'blocks: loop {
                let b = next_block.fetch_add(1, Ordering::Relaxed);
                if b >= nblocks {
                    break;
                }
                let (lo, hi) = block_bounds(b, db.len());
                let seg = cands.len();
                for (pidx, reps) in level_ref.iter().enumerate() {
                    for (ridx, rep) in reps.iter().enumerate() {
                        // occs are sorted by gid: slice out this block.
                        let start = rep.occs.partition_point(|o| (o.gid as usize) < lo);
                        let end = rep.occs.partition_point(|o| (o.gid as usize) < hi);
                        for (oidx, occ) in rep.occs[start..end].iter().enumerate() {
                            let g = &db[occ.gid as usize];
                            for (pv, &hv) in occ.mapping.iter().enumerate() {
                                for &(w, he) in g.neighbors(VertexId(hv)) {
                                    if occ.mapping.contains(&w.0) {
                                        continue; // cycle or already-used edge
                                    }
                                    let mut nedges = occ.edges.clone();
                                    let pos = match nedges.binary_search(&he.0) {
                                        Ok(_) => continue, // parallel guard (unreachable)
                                        Err(p) => p,
                                    };
                                    nedges.insert(pos, he.0);
                                    cands.push(Cand {
                                        gid: occ.gid,
                                        edges: nedges,
                                        key: (
                                            pidx as u32,
                                            ridx as u32,
                                            pv as u32,
                                            g.edge(he).label.0,
                                            g.vlabel(w).0,
                                        ),
                                        occ: (start + oidx) as u32,
                                        leaf: w.0,
                                    });
                                }
                            }
                        }
                    }
                }
                // Min-reduce this block's segment: one record per
                // (gid, edge set), owned by the smallest (key, occ, leaf).
                cands[seg..].sort_unstable_by(|a, b| {
                    (a.gid, a.edges.as_slice(), a.key, a.occ, a.leaf).cmp(&(
                        b.gid,
                        b.edges.as_slice(),
                        b.key,
                        b.occ,
                        b.leaf,
                    ))
                });
                let mut keep = seg;
                for r in seg..cands.len() {
                    if r == seg
                        || cands[r].gid != cands[keep - 1].gid
                        || cands[r].edges != cands[keep - 1].edges
                    {
                        cands.swap(keep, r);
                        keep += 1;
                    }
                }
                cands.truncate(keep);
                if cands.len() >= limits.max_candidates_per_level {
                    // The local distinct count is a lower bound on the
                    // total, so the level is doomed; stop scanning early.
                    hit_limit = true;
                    break 'blocks;
                }
            }
            // Re-sort by (key, gid, edges) and index the range of each
            // distinct key, so the serial merge below only walks per-key
            // group lists, never individual records.
            cands.sort_unstable_by(|a, b| {
                (a.key, a.gid, a.edges.as_slice()).cmp(&(b.key, b.gid, b.edges.as_slice()))
            });
            let mut groups: Vec<(ExtKey, u32, u32)> = Vec::new();
            for (i, c) in cands.iter().enumerate() {
                match groups.last_mut() {
                    Some((k, _, end)) if *k == c.key => *end = (i + 1) as u32,
                    _ => groups.push((c.key, i as u32, (i + 1) as u32)),
                }
            }
            ExtOut {
                cands,
                groups,
                hit_limit,
            }
        });

        let total_instances: usize = outs.iter().map(|o| o.cands.len()).sum();
        if outs.iter().any(|o| o.hit_limit) || total_instances >= limits.max_candidates_per_level {
            // A mid-level stop would leave supports under-counted, which is
            // unsound for filtering; discard the partial level entirely.
            // (The decision depends only on the total distinct-instance
            // count, so it is thread-count-independent.)
            stats.truncated = true;
            break;
        }
        stats.candidates += total_instances;

        // ---- Canonical merge: k-way walk over per-worker group lists. ----
        // Only group boundaries are walked serially; record spans stay in
        // the worker vectors, and occurrences (with their rebuilt child
        // mappings) are materialized later, in parallel, for candidates
        // that survive the support filter only.
        let mut groups: Vec<Group> = Vec::new();
        {
            let mut idx = vec![0usize; outs.len()];
            loop {
                let mut best: Option<usize> = None;
                for (w, out) in outs.iter().enumerate() {
                    if idx[w] >= out.groups.len() {
                        continue;
                    }
                    let key = out.groups[idx[w]].0;
                    best = Some(match best {
                        None => w,
                        Some(bw) => {
                            if key < outs[bw].groups[idx[bw]].0 {
                                w
                            } else {
                                bw
                            }
                        }
                    });
                }
                let Some(wi) = best else { break };
                let (key, start, end) = outs[wi].groups[idx[wi]];
                idx[wi] += 1;
                if groups.last().is_none_or(|grp| grp.key != key) {
                    groups.push(Group {
                        key,
                        spans: SmallVec::new(),
                        canon: None,
                        tree: None,
                    });
                }
                groups
                    .last_mut()
                    .expect("group pushed above")
                    .spans
                    .push((wi as u8, start, end));
            }
        }

        // Child tree + canonical string once per extension kind, in
        // parallel (the child is a pure function of the key). This pass
        // dispatches re-entrantly when the whole build already runs on a
        // pool seat.
        pool.for_each_mut(&mut groups, |grp| {
            let (pidx, ridx, pv, el, lv) = grp.key;
            let rep = &level_ref[pidx as usize][ridx as usize];
            let child = extend_with_leaf(&rep.tree, VertexId(pv), ELabel(el), VLabel(lv));
            grp.canon = Some(canonical_string(&child));
            grp.tree = Some(child);
        });

        // Group kinds by canonical string. The sort is stable, so within
        // one canon the representatives keep their ExtKey order.
        let mut order: Vec<u32> = (0..groups.len() as u32).collect();
        order.sort_by(|&a, &b| groups[a as usize].canon.cmp(&groups[b as usize].canon));

        let mut level_candidates = 0u64;
        let mut next_build: Vec<Vec<RepBuild>> = Vec::new();
        let mut i = 0usize;
        while i < order.len() {
            let mut j = i + 1;
            while j < order.len()
                && groups[order[j] as usize].canon == groups[order[i] as usize].canon
            {
                j += 1;
            }
            level_candidates += 1;
            let mut support: SupportSet = order[i..j]
                .iter()
                .flat_map(|&gi| {
                    groups[gi as usize].spans.iter().flat_map(|&(o, s, e)| {
                        outs[o as usize].cands[s as usize..e as usize]
                            .iter()
                            .map(|c| c.gid)
                    })
                })
                .collect();
            support.sort_unstable();
            support.dedup();
            if support.len() >= next_threshold {
                let reps: Vec<RepBuild> = order[i..j]
                    .iter()
                    .map(|&gi| {
                        let grp = &mut groups[gi as usize];
                        RepBuild {
                            tree: grp.tree.take().expect("child tree computed per kind"),
                            gidx: gi,
                            occs: Vec::new(),
                        }
                    })
                    .collect();
                let canon = groups[order[i] as usize]
                    .canon
                    .take()
                    .expect("canon computed per kind");
                result.push(MinedTree {
                    tree: reps[0].tree.clone(),
                    canon,
                    support,
                });
                next_build.push(reps);
            }
            i = j;
        }

        // Materialize the survivors' occurrence lists in parallel: rebuild
        // each child mapping from its parent occurrence plus the new leaf,
        // then sort by (gid, edges) — worker gid ranges interleave, so the
        // span concatenation is not globally ordered by itself.
        pool.for_each_mut(&mut next_build, |reps| {
            for rb in reps.iter_mut() {
                let grp = &groups[rb.gidx as usize];
                let total: usize = grp.spans.iter().map(|&(_, s, e)| (e - s) as usize).sum();
                rb.occs.reserve_exact(total);
                for &(o, s, e) in &grp.spans {
                    for c in &outs[o as usize].cands[s as usize..e as usize] {
                        let parent =
                            &level_ref[c.key.0 as usize][c.key.1 as usize].occs[c.occ as usize];
                        let mut mapping = parent.mapping.clone();
                        mapping.push(c.leaf);
                        rb.occs.push(Instance {
                            gid: c.gid,
                            mapping,
                            edges: c.edges.clone(),
                        });
                    }
                }
                sort_occs(&mut rb.occs);
            }
        });
        drop(outs);
        let next: Vec<Vec<Rep>> = next_build
            .into_iter()
            .map(|reps| {
                reps.into_iter()
                    .map(|rb| Rep {
                        tree: rb.tree,
                        occs: rb.occs,
                    })
                    .collect()
            })
            .collect();
        shard.add(&format!("{level_name}.candidates"), level_candidates);
        shard.add(&format!("{level_name}.patterns"), next.len() as u64);
        shard.add(
            &format!("{level_name}.pruned_by_support"),
            level_candidates - next.len() as u64,
        );
        if next.is_empty() {
            break;
        }
        if result.len() >= limits.max_patterns {
            stats.truncated = true;
            // `result` is (size, canon)-sorted by construction — levels
            // append in size order, patterns within a level in canon order —
            // so truncation is the deterministic (size, canon) cutoff.
            result.truncate(limits.max_patterns);
            break;
        }
        level = next;
        size += 1;
    }

    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    stats.patterns = result.len();
    shard.add("mine.candidates", stats.candidates as u64);
    shard.add("mine.patterns", stats.patterns as u64);
    (result, stats)
}

/// Enumeration-based mining: for every graph, enumerate all subtree edge
/// subsets up to η edges (each exactly once), canonicalize, and accumulate
/// support sets directly. No candidate generation, no embedding tests —
/// supports are exact by construction.
pub fn mine_frequent_trees_enum(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    assert!(sigma.is_monotone(), "σ(s) must be non-decreasing");
    let mut stats = MiningStats::default();
    struct Entry {
        tree: Tree,
        support: SupportSet,
    }
    let mut patterns: FxHashMap<CanonString, Entry> = FxHashMap::default();
    // Graphs whose enumeration hit the per-graph cap: their membership in
    // any pattern is unknown, so they are added to *every* support set.
    // That over-approximation is sound — the index build re-validates each
    // (feature, graph) pair when computing center positions.
    let mut overflow: Vec<u32> = Vec::new();
    for (gid, g) in db.iter().enumerate() {
        let gid = gid as u32;
        let mut enumerated = 0usize;
        let flow = graph_core::for_each_subtree_edge_subset(g, sigma.eta, |edges| {
            enumerated += 1;
            stats.candidates += 1;
            let sub = graph_core::edge_subgraph(g, edges);
            let tree = Tree::from_graph(sub.graph).expect("subtree enumeration yields trees");
            let canon = canonical_string(&tree);
            match patterns.get_mut(&canon) {
                Some(e) => {
                    if e.support.last() != Some(&gid) {
                        e.support.push(gid);
                    }
                }
                None => {
                    patterns.insert(
                        canon,
                        Entry {
                            tree,
                            support: vec![gid],
                        },
                    );
                }
            }
            if enumerated >= limits.max_candidates_per_level {
                stats.truncated = true;
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        if flow.is_break() {
            overflow.push(gid);
        }
    }
    let mut result: Vec<MinedTree> = patterns
        .into_iter()
        .filter_map(|(canon, e)| {
            let thr = sigma.threshold(e.tree.edge_count())? as usize;
            let mut support = e.support;
            if !overflow.is_empty() {
                support.extend(overflow.iter().copied());
                support.sort_unstable();
                support.dedup();
            }
            (support.len() >= thr).then_some(MinedTree {
                tree: e.tree,
                canon,
                support,
            })
        })
        .collect();
    if result.len() > limits.max_patterns {
        stats.truncated = true;
        // Keep the most frequent patterns of each size (deterministic).
        result.sort_by(|a, b| {
            (a.size(), std::cmp::Reverse(a.support.len()), &a.canon).cmp(&(
                b.size(),
                std::cmp::Reverse(b.support.len()),
                &b.canon,
            ))
        });
        result.truncate(limits.max_patterns);
    }
    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    stats.patterns = result.len();
    (result, stats)
}

/// Level-wise apriori mining (candidate generation + embedding-test support
/// counting). Kept as an oracle for [`mine_frequent_trees_enum`] and for
/// high-threshold settings where candidate pruning pays off.
pub fn mine_frequent_trees_apriori(
    db: &[Graph],
    sigma: &SigmaFn,
    limits: &MiningLimits,
) -> (Vec<MinedTree>, MiningStats) {
    assert!(
        sigma.is_monotone(),
        "σ(s) must be non-decreasing for apriori mining"
    );
    let mut stats = MiningStats::default();
    let summaries: Vec<GraphSummary> = db.iter().map(GraphSummary::new).collect();

    // ---- Level 1: single-edge trees by direct scan. ----
    let mut level: FxHashMap<CanonString, MinedTree> = FxHashMap::default();
    for (gid, g) in db.iter().enumerate() {
        let mut seen_here: FxHashSet<CanonString> = FxHashSet::default();
        for e in g.edges() {
            let t = single_edge_tree(g.vlabel(e.u), e.label, g.vlabel(e.v));
            let canon = canonical_string(&t);
            if !seen_here.insert(canon.clone()) {
                continue;
            }
            level
                .entry(canon.clone())
                .or_insert_with(|| MinedTree {
                    tree: t,
                    canon,
                    support: Vec::new(),
                })
                .support
                .push(gid as u32);
        }
    }
    let t1 = sigma.threshold(1).expect("σ(1) must be finite") as usize;
    level.retain(|_, m| m.support.len() >= t1);

    // Global extension alphabet: (attach vertex label, edge label, leaf
    // vertex label), both directions of every observed edge.
    let mut triples: FxHashSet<(VLabel, ELabel, VLabel)> = FxHashSet::default();
    for g in db {
        for e in g.edges() {
            let a = g.vlabel(e.u);
            let b = g.vlabel(e.v);
            triples.insert((a, e.label, b));
            triples.insert((b, e.label, a));
        }
    }
    let mut triples: Vec<_> = triples.into_iter().collect();
    triples.sort_unstable();

    let mut result: Vec<MinedTree> = level.values().cloned().collect();
    stats.patterns = result.len();

    // ---- Levels 2..=eta ----
    let mut size = 1usize;
    while size < sigma.eta {
        let Some(next_threshold) = sigma.threshold(size + 1) else {
            break;
        };
        let next_threshold = next_threshold as usize;
        let mut candidates: FxHashMap<CanonString, Tree> = FxHashMap::default();
        'outer: for m in level.values() {
            let g = m.tree.graph();
            for at in g.vertices() {
                let at_label = g.vlabel(at);
                for &(a, el, leaf) in triples.iter() {
                    if a != at_label {
                        continue;
                    }
                    let cand = extend_with_leaf(&m.tree, at, el, leaf);
                    let canon = canonical_string(&cand);
                    if candidates.contains_key(&canon) {
                        continue;
                    }
                    stats.candidates += 1;
                    candidates.insert(canon, cand);
                    if candidates.len() >= limits.max_candidates_per_level {
                        stats.truncated = true;
                        break 'outer;
                    }
                }
            }
        }

        let mut next_level: FxHashMap<CanonString, MinedTree> = FxHashMap::default();
        for (canon, cand) in candidates {
            // Apriori: all maximal proper subtrees must be frequent.
            let subs = leaf_removal_canons(&cand);
            let mut sub_supports: Vec<&[u32]> = Vec::with_capacity(subs.len());
            let mut pruned = false;
            for s in &subs {
                match level.get(s) {
                    Some(m) => sub_supports.push(&m.support),
                    None => {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned {
                stats.apriori_pruned += 1;
                continue;
            }
            let candidates_set = intersect_many(&sub_supports, db.len());
            if candidates_set.len() < next_threshold {
                continue;
            }
            // Exact support by embedding tests.
            let mut support: SupportSet = Vec::new();
            let remaining = candidates_set.len();
            for (i, &gid) in candidates_set.iter().enumerate() {
                // Not enough graphs left to reach the threshold: bail.
                if support.len() + (remaining - i) < next_threshold {
                    break;
                }
                let g = &db[gid as usize];
                if !summaries[gid as usize].may_contain(cand.graph()) {
                    continue;
                }
                stats.embed_tests += 1;
                if graph_core::is_subgraph_isomorphic(cand.graph(), g) {
                    support.push(gid);
                }
            }
            if support.len() >= next_threshold {
                next_level.insert(
                    canon.clone(),
                    MinedTree {
                        tree: cand,
                        canon,
                        support,
                    },
                );
            }
        }

        if next_level.is_empty() {
            break;
        }
        result.extend(next_level.values().cloned());
        stats.patterns = result.len();
        if result.len() >= limits.max_patterns {
            stats.truncated = true;
            break;
        }
        level = next_level;
        size += 1;
    }

    // Deterministic output order: by size then canonical string.
    result.sort_by(|a, b| (a.size(), &a.canon).cmp(&(b.size(), &b.canon)));
    (result, stats)
}

/// Shrink a mined feature set (paper §4.1.2): remove every tree `r` with
/// `|⋂ᵢ D_rᵢ| / |D_r| ≤ γ`, where the `rᵢ` are `r`'s proper subtrees —
/// such an `r` adds little beyond its subtrees' intersection.
///
/// The intersection over all proper subtrees equals the intersection over
/// the maximal (leaf-removal) subtrees, since every proper subtree contains
/// no more information than some maximal one. Decisions are taken against
/// the *input* set, so removal order does not matter. Single-edge trees are
/// always kept (completeness).
pub fn shrink_features(mined: Vec<MinedTree>, gamma: f64) -> Vec<MinedTree> {
    shrink_features_threads(mined, gamma, 1)
}

/// [`shrink_features`] with the per-tree keep/drop decisions fanned out
/// over up to `threads` workers. Every decision reads only the (shared,
/// immutable) input set and the result preserves input order, so the output
/// is identical to the sequential pass at any thread count.
pub fn shrink_features_threads(
    mined: Vec<MinedTree>,
    gamma: f64,
    threads: usize,
) -> Vec<MinedTree> {
    let pool = graph_core::par::Pool::new(threads.max(1));
    shrink_features_pool(mined, gamma, &pool)
}

/// [`shrink_features_threads`] with the decisions dispatched as seats on a
/// persistent [`graph_core::par::Pool`] (the same pool a build uses for
/// mining and center extraction). Output identical at any pool size.
pub fn shrink_features_pool(
    mined: Vec<MinedTree>,
    gamma: f64,
    pool: &graph_core::par::Pool,
) -> Vec<MinedTree> {
    let mut keep: Vec<(u32, bool)> = (0..mined.len() as u32).map(|i| (i, false)).collect();
    {
        let by_canon: FxHashMap<&CanonString, &[u32]> = mined
            .iter()
            .map(|m| (&m.canon, m.support.as_slice()))
            .collect();
        let decide = |m: &MinedTree| -> bool {
            if m.size() <= 1 {
                return true;
            }
            let subs = leaf_removal_canons(&m.tree);
            let sets: Vec<&[u32]> = subs
                .iter()
                .filter_map(|c| by_canon.get(c).copied())
                .collect();
            if sets.len() != subs.len() {
                // Some subtree was not mined (only possible when mining was
                // truncated); keep r conservatively.
                return true;
            }
            let inter = intersect_many(&sets, usize::MAX);
            let ratio = inter.len() as f64 / m.support.len() as f64;
            ratio > gamma
        };
        pool.for_each_mut(&mut keep, |slot| {
            slot.1 = decide(&mined[slot.0 as usize]);
        });
    }
    let mut it = keep.iter();
    mined
        .into_iter()
        .filter(|_| it.next().expect("one flag per tree").1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    /// The running-example-style database: simple labeled graphs.
    fn tiny_db() -> Vec<Graph> {
        vec![
            // triangle a-a-b with labels
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            // path a-a-b
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            // star
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ]
    }

    fn uniform_sigma(eta: usize) -> SigmaFn {
        SigmaFn {
            alpha: eta,
            beta: 1.0,
            eta,
        }
    }

    #[test]
    fn level1_counts_distinct_edges() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(1), &MiningLimits::default());
        // Distinct single-edge trees: (0,0,0), (0,0,1), (0,1,1)
        assert_eq!(mined.len(), 3);
        for m in &mined {
            assert_eq!(m.size(), 1);
            assert!(!m.support.is_empty());
        }
        // (0-0 with edge 0) appears in all three graphs
        let aa = mined
            .iter()
            .find(|m| {
                let g = m.tree.graph();
                g.vlabel(VertexId(0)).0 == 0 && g.vlabel(VertexId(1)).0 == 0
            })
            .unwrap();
        assert_eq!(aa.support, vec![0, 1, 2]);
    }

    #[test]
    fn supports_are_exact() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(3), &MiningLimits::default());
        for m in &mined {
            let brute: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(m.tree.graph(), g))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(m.support, brute, "wrong support for {:?}", m.tree);
        }
    }

    #[test]
    fn mining_is_complete_at_threshold_one() {
        // Every subtree (up to eta edges) of every graph must be mined.
        let db = tiny_db();
        let eta = 3;
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(eta), &MiningLimits::default());
        let mined_canons: FxHashSet<CanonString> = mined.iter().map(|m| m.canon.clone()).collect();
        for g in &db {
            let _ = graph_core::for_each_subtree_edge_subset(g, eta, |edges| {
                let sub = graph_core::edge_subgraph(g, edges);
                let t = Tree::from_graph(sub.graph).expect("subtree enumeration yields trees");
                let c = canonical_string(&t);
                assert!(mined_canons.contains(&c), "missing subtree {t:?}");
                std::ops::ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn threshold_filters_rare_patterns() {
        let db = tiny_db();
        let sigma = SigmaFn {
            alpha: 0,
            beta: 0.0,
            eta: 2,
        };
        // σ(s) = 1 + 0 = 1 for s ≤ 2 — wait, alpha=0 means formula applies:
        // σ(1) = 1, σ(2) = 1. Instead use beta to demand support 3:
        let sigma3 = SigmaFn {
            alpha: 0,
            beta: 2.0,
            eta: 2,
        };
        // σ(1) = 1 + 2*1 - 0 = 3, σ(2) = 5
        assert_eq!(sigma3.threshold(1), Some(3));
        let (mined, _) = mine_frequent_trees(&db, &sigma3, &MiningLimits::default());
        for m in &mined {
            assert!(m.support.len() >= 3);
        }
        // exactly the (0,0,l0) and (0,1,l0) edges appear in all 3 graphs
        assert_eq!(mined.len(), 2);
        let _ = sigma;
    }

    #[test]
    fn eta_caps_pattern_size() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        assert!(mined.iter().all(|m| m.size() <= 2));
    }

    #[test]
    fn shrinking_removes_redundant_trees() {
        // Database where a 2-edge path's support equals the intersection of
        // its single-edge subtrees' supports → ratio 1 ≤ γ, removed.
        let db = vec![
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
        ];
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        let before = mined.len();
        let shrunk = shrink_features(mined, 1.0);
        assert!(shrunk.len() < before);
        // All single-edge trees stay.
        assert!(shrunk.iter().all(|m| m.size() == 1));
    }

    #[test]
    fn shrinking_keeps_discriminative_trees() {
        // 0-1 and 1-2 edges both appear in g0 and g1, but the path 0-1-2
        // only in g0 → ratio 2/1 = 2 > γ=1.5, kept.
        let db = vec![
            graph_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 1, 2, 1], &[(0, 1, 0), (2, 3, 0)]),
        ];
        let (mined, _) = mine_frequent_trees(&db, &uniform_sigma(2), &MiningLimits::default());
        let shrunk = shrink_features(mined, 1.5);
        assert!(
            shrunk.iter().any(|m| m.size() == 2),
            "discriminative 2-edge tree should survive"
        );
    }

    #[test]
    fn leaf_removals_of_path() {
        let t = tree_core::tree_from(&[0, 1, 2], &[(0, 1, 0), (1, 2, 0)]);
        let subs = leaf_removal_canons(&t);
        assert_eq!(subs.len(), 2);
        // they are the 0-1 and 1-2 edges, distinct
        assert_ne!(subs[0], subs[1]);
    }

    #[test]
    fn stats_populated() {
        let db = tiny_db();
        let (_, stats) = mine_frequent_trees(&db, &uniform_sigma(3), &MiningLimits::default());
        assert!(stats.patterns > 0);
        assert!(stats.candidates > 0);
        assert!(!stats.truncated);
    }

    #[test]
    fn obs_counters_match_stats() {
        let db = tiny_db();
        let shard = obs::Shard::detached(true);
        let (mined, stats) =
            mine_frequent_trees_obs(&db, &uniform_sigma(3), &MiningLimits::default(), &shard);
        let set = shard.into_set();
        assert_eq!(set.counter("mine.patterns"), stats.patterns as u64);
        assert_eq!(set.counter("mine.candidates"), stats.candidates as u64);
        assert_eq!(set.counter("mine.level1.patterns"), 3);
        assert!(set.span("mine.level1").is_some());
        assert!(set.span("mine.level2").is_some());
        // Per-level pattern counts sum to the total.
        let per_level: u64 = (1..=3)
            .map(|s| set.counter(&format!("mine.level{s}.patterns")))
            .sum();
        assert_eq!(per_level, mined.len() as u64);
    }

    #[test]
    fn pattern_cap_truncates() {
        let db = tiny_db();
        let limits = MiningLimits {
            max_patterns: 2,
            max_candidates_per_level: 1_000_000,
        };
        let (mined, stats) = mine_frequent_trees(&db, &uniform_sigma(5), &limits);
        assert!(stats.truncated);
        // The cap stops mining after the first level that crosses it, so at
        // most two levels were produced.
        assert!(mined.iter().all(|m| m.size() <= 2));
    }
}

#[cfg(test)]
mod enum_vs_apriori {
    use super::*;
    use graph_core::graph_from;

    #[test]
    fn miners_agree_on_small_databases() {
        let dbs = vec![
            vec![
                graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
                graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
                graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
            ],
            vec![
                graph_from(&[2, 1, 0, 1], &[(0, 1, 0), (1, 2, 1), (2, 3, 0), (3, 0, 1)]),
                graph_from(&[1, 1, 2], &[(0, 1, 1), (1, 2, 0)]),
            ],
        ];
        let sigmas = vec![
            SigmaFn {
                alpha: 3,
                beta: 1.0,
                eta: 3,
            },
            SigmaFn {
                alpha: 1,
                beta: 1.0,
                eta: 4,
            },
            SigmaFn {
                alpha: 0,
                beta: 2.0,
                eta: 2,
            },
        ];
        for db in &dbs {
            for sigma in &sigmas {
                let (a, _) = mine_frequent_trees_enum(db, sigma, &MiningLimits::default());
                let (b, _) = mine_frequent_trees_apriori(db, sigma, &MiningLimits::default());
                let (c, _) = mine_frequent_trees_levelwise(db, sigma, &MiningLimits::default());
                let mut kc: Vec<(CanonString, SupportSet)> =
                    c.into_iter().map(|m| (m.canon, m.support)).collect();
                kc.sort();
                let mut ka: Vec<(CanonString, SupportSet)> =
                    a.into_iter().map(|m| (m.canon, m.support)).collect();
                let mut kb: Vec<(CanonString, SupportSet)> =
                    b.into_iter().map(|m| (m.canon, m.support)).collect();
                ka.sort();
                kb.sort();
                assert_eq!(ka, kb, "enum vs apriori disagree for sigma {sigma:?}");
                assert_eq!(ka, kc, "enum vs levelwise disagree for sigma {sigma:?}");
            }
        }
    }

    #[test]
    fn enum_truncation_overapproximates_but_never_undercounts() {
        let db = vec![
            graph_from(&[0, 0, 0, 0], &[(0, 1, 0), (1, 2, 0), (2, 3, 0)]),
            graph_from(&[0, 0], &[(0, 1, 0)]),
        ];
        let limits = MiningLimits {
            max_patterns: usize::MAX,
            max_candidates_per_level: 3, // graph 0 will overflow
        };
        let sigma = SigmaFn {
            alpha: 3,
            beta: 1.0,
            eta: 3,
        };
        let (mined, stats) = mine_frequent_trees_enum(&db, &sigma, &limits);
        assert!(stats.truncated);
        // every pattern's true support must be a subset of the reported one
        for m in &mined {
            for (gid, g) in db.iter().enumerate() {
                if graph_core::is_subgraph_isomorphic(m.tree.graph(), g) {
                    assert!(
                        m.support.contains(&(gid as u32)),
                        "undercounted support under truncation"
                    );
                }
            }
        }
    }
}
