//! Support sets and the size-dependent support threshold σ(s) (paper
//! Eq. 1).
//!
//! Support sets are sorted vectors of graph ids; the query pipeline lives
//! on their intersections (Algorithm 1), so a galloping intersection is
//! provided.

/// The paper's support threshold function (Eq. 1):
///
/// ```text
///           ⎧ 1                 if s ≤ α
///    σ(s) = ⎨ 1 + βs − αβ       if α < s ≤ η
///           ⎩ +∞                if s > η
/// ```
///
/// σ(1) = 1 guarantees completeness (every query can be partitioned into
/// single-edge feature trees in the worst case); the growing threshold
/// keeps large, rarely-useful trees out of the index.
#[derive(Clone, Copy, Debug)]
pub struct SigmaFn {
    /// Size up to which every observed tree is kept (σ = 1).
    pub alpha: usize,
    /// Threshold growth rate per extra edge.
    pub beta: f64,
    /// Maximum feature-tree edge size (σ = +∞ beyond).
    pub eta: usize,
}

impl SigmaFn {
    /// The paper's AIDS-dataset setting: α = 5, β = 2, η = 10 (§6.1).
    pub fn paper_default() -> Self {
        Self {
            alpha: 5,
            beta: 2.0,
            eta: 10,
        }
    }

    /// Threshold for edge size `s`, or `None` for +∞ (size not indexed).
    pub fn threshold(&self, s: usize) -> Option<u64> {
        if s == 0 {
            return None; // single vertices are never features
        }
        if s <= self.alpha {
            Some(1)
        } else if s <= self.eta {
            let v = 1.0 + self.beta * s as f64 - self.alpha as f64 * self.beta;
            Some(v.ceil().max(1.0) as u64)
        } else {
            None
        }
    }

    /// Whether the function is non-decreasing over `1..=eta` (required for
    /// the apriori pruning to be sound); true for all valid parameters.
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for s in 1..=self.eta {
            match self.threshold(s) {
                Some(t) if t >= prev => prev = t,
                _ => return false,
            }
        }
        true
    }
}

/// Sorted-vector support set of a pattern: ids of the database graphs that
/// contain it (Definition 6).
pub type SupportSet = Vec<u32>;

/// Ratio at which [`intersect`] switches from the two-pointer merge to
/// galloping probes from the smaller side into the larger.
const GALLOP_SKEW: usize = 16;

/// First index `>= from` with `large[index] >= x` (`large.len()` if none):
/// exponential search from `from`, then binary search inside the bracketed
/// window. Cost is `O(log gap)` in the distance advanced, which is what
/// makes a sweep of a tiny set through a huge one near-linear in the tiny
/// set.
fn gallop_first_ge(large: &[u32], from: usize, x: u32) -> usize {
    if from >= large.len() || large[from] >= x {
        return from;
    }
    // Invariant: large[from + off/2] < x (for off == 1, large[from] < x).
    let mut off = 1usize;
    while from + off < large.len() && large[from + off] < x {
        off <<= 1;
    }
    let lo = from + (off >> 1) + 1;
    let hi = (from + off).min(large.len());
    lo + large[lo..hi].partition_point(|&y| y < x)
}

/// [`intersect`] writing into a caller-owned buffer (cleared first), so
/// loops like [`intersect_many`] can reuse one allocation across steps.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut SupportSet) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.reserve(small.len());
    if large.len() > small.len().saturating_mul(GALLOP_SKEW) {
        // Asymmetric: gallop each small element forward from a moving
        // left bound.
        let mut lo = 0usize;
        for &x in small {
            let pos = gallop_first_ge(large, lo, x);
            if pos >= large.len() {
                break;
            }
            if large[pos] == x {
                out.push(x);
                lo = pos + 1;
            } else {
                lo = pos;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Intersect two sorted id sets.
///
/// Two-pointer merge when the sizes are comparable; when one side is more
/// than [`GALLOP_SKEW`]× smaller, gallop its elements through the larger
/// side instead.
pub fn intersect(a: &[u32], b: &[u32]) -> SupportSet {
    let mut out = Vec::new();
    intersect_into(a, b, &mut out);
    out
}

/// Intersect many sorted id sets, smallest first (empty input yields the
/// universe `0..n_graphs`). The accumulator shrinks monotonically while the
/// remaining sets stay full-size, so later steps hit the galloping path of
/// [`intersect_into`]; one scratch buffer is ping-ponged across steps
/// instead of allocating per intersection.
pub fn intersect_many(sets: &[&[u32]], n_graphs: usize) -> SupportSet {
    if sets.is_empty() {
        return (0..n_graphs as u32).collect();
    }
    let mut order: Vec<&&[u32]> = sets.iter().collect();
    order.sort_by_key(|s| s.len());
    let mut acc: SupportSet = order[0].to_vec();
    let mut scratch: SupportSet = Vec::new();
    for s in &order[1..] {
        if acc.is_empty() {
            break;
        }
        intersect_into(&acc, s, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_paper_values() {
        let s = SigmaFn::paper_default();
        assert_eq!(s.threshold(1), Some(1));
        assert_eq!(s.threshold(5), Some(1));
        // 1 + 2*6 - 5*2 = 3
        assert_eq!(s.threshold(6), Some(3));
        // 1 + 2*10 - 10 = 11
        assert_eq!(s.threshold(10), Some(11));
        assert_eq!(s.threshold(11), None);
        assert_eq!(s.threshold(0), None);
        assert!(s.is_monotone());
    }

    #[test]
    fn sigma_degenerate_params() {
        // alpha = eta: uniform threshold 1.
        let s = SigmaFn {
            alpha: 3,
            beta: 5.0,
            eta: 3,
        };
        assert_eq!(s.threshold(3), Some(1));
        assert_eq!(s.threshold(4), None);
        assert!(s.is_monotone());
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[2], &[2]), vec![2]);
        assert_eq!(intersect(&[1, 2, 3], &[4, 5]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_asymmetric_sizes() {
        let big: Vec<u32> = (0..1000).collect();
        let small = vec![5, 500, 999, 1500];
        assert_eq!(intersect(&small, &big), vec![5, 500, 999]);
        assert_eq!(intersect(&big, &small), vec![5, 500, 999]);
    }

    #[test]
    fn intersect_many_with_universe() {
        assert_eq!(intersect_many(&[], 3), vec![0, 1, 2]);
        let a = vec![0, 1, 2, 3];
        let b = vec![1, 3];
        let c = vec![0, 1, 3];
        assert_eq!(intersect_many(&[&a, &b, &c], 10), vec![1, 3]);
    }

    #[test]
    fn gallop_first_ge_brackets_correctly() {
        let v: Vec<u32> = (0..100).map(|x| x * 3).collect();
        for from in [0usize, 1, 37, 99, 100] {
            for x in [0u32, 1, 3, 100, 296, 297, 298, 1000] {
                let expect = from + v[from.min(v.len())..].partition_point(|&y| y < x);
                assert_eq!(gallop_first_ge(&v, from, x), expect, "from={from} x={x}");
            }
        }
    }

    #[test]
    fn intersect_extreme_skew_hits_gallop_path() {
        // |large| / |small| far beyond GALLOP_SKEW, with matches at the
        // ends and the middle so the moving bound sweeps the whole range.
        let large: Vec<u32> = (0..10_000).map(|x| x * 2).collect();
        let small = vec![0u32, 9_998, 10_000, 19_998, 19_999];
        assert_eq!(intersect(&small, &large), vec![0, 9_998, 10_000, 19_998]);
        assert_eq!(intersect(&large, &small), vec![0, 9_998, 10_000, 19_998]);
    }

    proptest::proptest! {
        #[test]
        fn intersect_matches_naive(mut a in proptest::collection::vec(0u32..200, 0..60),
                                   mut b in proptest::collection::vec(0u32..200, 0..60)) {
            a.sort_unstable(); a.dedup();
            b.sort_unstable(); b.dedup();
            let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            proptest::prop_assert_eq!(intersect(&a, &b), naive);
        }

        /// The skewed generator drives |b| past GALLOP_SKEW·|a| regularly,
        /// so both the two-pointer and galloping paths are compared against
        /// the naive merge.
        #[test]
        fn intersect_many_matches_naive_merge(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u32..400, 0..120), 0..6),
            n_graphs in 0usize..20,
        ) {
            let sets: Vec<Vec<u32>> = sets
                .into_iter()
                .map(|mut s| { s.sort_unstable(); s.dedup(); s })
                .collect();
            let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
            let naive: Vec<u32> = if refs.is_empty() {
                (0..n_graphs as u32).collect()
            } else {
                let mut acc: Vec<u32> = refs[0].to_vec();
                for s in &refs[1..] {
                    acc.retain(|x| s.contains(x));
                }
                acc
            };
            proptest::prop_assert_eq!(intersect_many(&refs, n_graphs), naive);
        }
    }

    /// Replays the shrunk input recorded in
    /// `proptest-regressions/support.txt` (`a = [111, 22, 0, 0]`,
    /// `b = [22, 111]`): after sort+dedup the intersection must contain
    /// both common elements.
    #[test]
    fn intersect_regression_support_txt() {
        let mut a = vec![111u32, 22, 0, 0];
        let mut b = vec![22u32, 111];
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
        assert_eq!(intersect(&a, &b), naive);
        assert_eq!(intersect(&a, &b), vec![22, 111]);
    }
}
