//! Support sets and the size-dependent support threshold σ(s) (paper
//! Eq. 1).
//!
//! Support sets are sorted vectors of graph ids; the query pipeline lives
//! on their intersections (Algorithm 1), so a galloping intersection is
//! provided.

/// The paper's support threshold function (Eq. 1):
///
/// ```text
///           ⎧ 1                 if s ≤ α
///    σ(s) = ⎨ 1 + βs − αβ       if α < s ≤ η
///           ⎩ +∞                if s > η
/// ```
///
/// σ(1) = 1 guarantees completeness (every query can be partitioned into
/// single-edge feature trees in the worst case); the growing threshold
/// keeps large, rarely-useful trees out of the index.
#[derive(Clone, Copy, Debug)]
pub struct SigmaFn {
    /// Size up to which every observed tree is kept (σ = 1).
    pub alpha: usize,
    /// Threshold growth rate per extra edge.
    pub beta: f64,
    /// Maximum feature-tree edge size (σ = +∞ beyond).
    pub eta: usize,
}

impl SigmaFn {
    /// The paper's AIDS-dataset setting: α = 5, β = 2, η = 10 (§6.1).
    pub fn paper_default() -> Self {
        Self {
            alpha: 5,
            beta: 2.0,
            eta: 10,
        }
    }

    /// Threshold for edge size `s`, or `None` for +∞ (size not indexed).
    pub fn threshold(&self, s: usize) -> Option<u64> {
        if s == 0 {
            return None; // single vertices are never features
        }
        if s <= self.alpha {
            Some(1)
        } else if s <= self.eta {
            let v = 1.0 + self.beta * s as f64 - self.alpha as f64 * self.beta;
            Some(v.ceil().max(1.0) as u64)
        } else {
            None
        }
    }

    /// Whether the function is non-decreasing over `1..=eta` (required for
    /// the apriori pruning to be sound); true for all valid parameters.
    pub fn is_monotone(&self) -> bool {
        let mut prev = 0u64;
        for s in 1..=self.eta {
            match self.threshold(s) {
                Some(t) if t >= prev => prev = t,
                _ => return false,
            }
        }
        true
    }
}

/// Sorted-vector support set of a pattern: ids of the database graphs that
/// contain it (Definition 6).
pub type SupportSet = Vec<u32>;

/// Intersect two sorted id sets.
///
/// Two-pointer merge when the sizes are comparable; when one side is much
/// smaller, binary-search each of its elements in the larger side instead.
pub fn intersect(a: &[u32], b: &[u32]) -> SupportSet {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    if large.len() > small.len().saturating_mul(16) {
        // Asymmetric: binary search with a moving left bound.
        let mut lo = 0usize;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(i) => {
                    out.push(x);
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
            if lo >= large.len() {
                break;
            }
        }
    } else {
        let (mut i, mut j) = (0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    out
}

/// Intersect many sorted id sets, smallest first (empty input yields the
/// universe `0..n_graphs`).
pub fn intersect_many(sets: &[&[u32]], n_graphs: usize) -> SupportSet {
    if sets.is_empty() {
        return (0..n_graphs as u32).collect();
    }
    let mut order: Vec<&&[u32]> = sets.iter().collect();
    order.sort_by_key(|s| s.len());
    let mut acc: SupportSet = order[0].to_vec();
    for s in &order[1..] {
        if acc.is_empty() {
            break;
        }
        acc = intersect(&acc, s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_paper_values() {
        let s = SigmaFn::paper_default();
        assert_eq!(s.threshold(1), Some(1));
        assert_eq!(s.threshold(5), Some(1));
        // 1 + 2*6 - 5*2 = 3
        assert_eq!(s.threshold(6), Some(3));
        // 1 + 2*10 - 10 = 11
        assert_eq!(s.threshold(10), Some(11));
        assert_eq!(s.threshold(11), None);
        assert_eq!(s.threshold(0), None);
        assert!(s.is_monotone());
    }

    #[test]
    fn sigma_degenerate_params() {
        // alpha = eta: uniform threshold 1.
        let s = SigmaFn {
            alpha: 3,
            beta: 5.0,
            eta: 3,
        };
        assert_eq!(s.threshold(3), Some(1));
        assert_eq!(s.threshold(4), None);
        assert!(s.is_monotone());
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[2], &[2]), vec![2]);
        assert_eq!(intersect(&[1, 2, 3], &[4, 5]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_asymmetric_sizes() {
        let big: Vec<u32> = (0..1000).collect();
        let small = vec![5, 500, 999, 1500];
        assert_eq!(intersect(&small, &big), vec![5, 500, 999]);
        assert_eq!(intersect(&big, &small), vec![5, 500, 999]);
    }

    #[test]
    fn intersect_many_with_universe() {
        assert_eq!(intersect_many(&[], 3), vec![0, 1, 2]);
        let a = vec![0, 1, 2, 3];
        let b = vec![1, 3];
        let c = vec![0, 1, 3];
        assert_eq!(intersect_many(&[&a, &b, &c], 10), vec![1, 3]);
    }

    proptest::proptest! {
        #[test]
        fn intersect_matches_naive(mut a in proptest::collection::vec(0u32..200, 0..60),
                                   mut b in proptest::collection::vec(0u32..200, 0..60)) {
            a.sort_unstable(); a.dedup();
            b.sort_unstable(); b.dedup();
            let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            proptest::prop_assert_eq!(intersect(&a, &b), naive);
        }
    }

    /// Replays the shrunk input recorded in
    /// `proptest-regressions/support.txt` (`a = [111, 22, 0, 0]`,
    /// `b = [22, 111]`): after sort+dedup the intersection must contain
    /// both common elements.
    #[test]
    fn intersect_regression_support_txt() {
        let mut a = vec![111u32, 22, 0, 0];
        let mut b = vec![22u32, 111];
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
        assert_eq!(intersect(&a, &b), naive);
        assert_eq!(intersect(&a, &b), vec![22, 111]);
    }
}
