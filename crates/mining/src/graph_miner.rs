//! Level-wise frequent **subgraph** mining — the substrate of the gIndex
//! baseline (Yan/Yu/Han, SIGMOD'04, as parameterized in the paper's §6.1).
//!
//! Same apriori skeleton as [`crate::tree_miner`], but patterns are general
//! connected graphs: a pattern grows either by a new leaf edge or by a
//! *closing* edge between two existing vertices, and deduplication needs
//! the exponential-worst-case [`graph_core::canonical_code`] instead of
//! polynomial tree canonical strings. This cost asymmetry is exactly the
//! paper's argument for tree features.

use crate::support::{intersect_many, SupportSet};
use graph_core::{canonical_code, CanonCode, ELabel, Graph, GraphBuilder, VLabel};
use rustc_hash::{FxHashMap, FxHashSet};

/// gIndex's size-increasing support function ψ(l) (§6.1): 1 below 4 edges,
/// `√(l / maxL) · Θ` above, capped at Θ.
#[derive(Clone, Copy, Debug)]
pub struct PsiFn {
    /// Maximum fragment edge size (`maxL`, paper value 10).
    pub max_l: usize,
    /// Maximum support (`Θ`, paper value 0.1·N), as an absolute count.
    pub theta: f64,
}

impl PsiFn {
    /// Paper setting for a database of `n` graphs: maxL = 10, Θ = 0.1·N.
    pub fn paper_default(n: usize) -> Self {
        Self {
            max_l: 10,
            theta: 0.1 * n as f64,
        }
    }

    /// Threshold for edge size `l`, or `None` beyond `maxL`.
    pub fn threshold(&self, l: usize) -> Option<u64> {
        if l == 0 || l > self.max_l {
            return None;
        }
        if l < 4 {
            Some(1)
        } else {
            let v = ((l as f64 / self.max_l as f64).sqrt() * self.theta).ceil();
            Some(v.max(1.0) as u64)
        }
    }
}

/// A mined frequent subgraph with its exact support set.
#[derive(Clone, Debug)]
pub struct MinedGraph {
    /// The pattern (connected).
    pub graph: Graph,
    /// Canonical code (index key).
    pub code: CanonCode,
    /// Sorted ids of database graphs containing the pattern.
    pub support: SupportSet,
}

impl MinedGraph {
    /// Edge size of the pattern.
    pub fn size(&self) -> usize {
        self.graph.edge_count()
    }
}

/// Reuse the tree miner's limits.
pub use crate::tree_miner::{MiningLimits, MiningStats};

fn single_edge_graph(a: VLabel, el: ELabel, b: VLabel) -> Graph {
    let (a, b) = (a.min(b), a.max(b));
    let mut gb = GraphBuilder::with_capacity(2, 1);
    let u = gb.add_vertex(a);
    let v = gb.add_vertex(b);
    gb.add_edge(u, v, el).expect("single edge");
    gb.build()
}

fn copy_builder(g: &Graph) -> GraphBuilder {
    let mut b = GraphBuilder::with_capacity(g.vertex_count() + 1, g.edge_count() + 1);
    for v in g.vertices() {
        b.add_vertex(g.vlabel(v));
    }
    for e in g.edges() {
        b.add_edge(e.u, e.v, e.label).expect("copying a graph");
    }
    b
}

/// Codes of all connected one-edge-removed subgraphs of `g` (used for the
/// apriori check; removals that disconnect the pattern are skipped).
fn edge_removal_codes(g: &Graph) -> Vec<CanonCode> {
    let mut out = Vec::new();
    if g.edge_count() <= 1 {
        return out;
    }
    for skip in g.edge_ids() {
        let keep: Vec<graph_core::EdgeId> = g.edge_ids().filter(|&e| e != skip).collect();
        let sub = graph_core::edge_subgraph(g, &keep);
        // Removing an edge can strand an endpoint (degree-1): the edge
        // subgraph then simply omits it. Connectivity must still hold.
        if sub.graph.is_connected() && sub.graph.vertex_count() > 0 {
            out.push(canonical_code(&sub.graph));
        }
    }
    out
}

/// Mine all ψ-frequent connected subgraphs of `db`.
pub fn mine_frequent_subgraphs(
    db: &[Graph],
    psi: &PsiFn,
    limits: &MiningLimits,
) -> (Vec<MinedGraph>, MiningStats) {
    let mut stats = MiningStats::default();

    // ---- Level 1 ----
    let mut level: FxHashMap<CanonCode, MinedGraph> = FxHashMap::default();
    for (gid, g) in db.iter().enumerate() {
        let mut seen_here: FxHashSet<CanonCode> = FxHashSet::default();
        for e in g.edges() {
            let p = single_edge_graph(g.vlabel(e.u), e.label, g.vlabel(e.v));
            let code = canonical_code(&p);
            if !seen_here.insert(code.clone()) {
                continue;
            }
            level
                .entry(code.clone())
                .or_insert_with(|| MinedGraph {
                    graph: p,
                    code,
                    support: Vec::new(),
                })
                .support
                .push(gid as u32);
        }
    }
    let t1 = psi.threshold(1).expect("ψ(1) is finite") as usize;
    level.retain(|_, m| m.support.len() >= t1);

    // Extension alphabets.
    let mut leaf_triples: FxHashSet<(VLabel, ELabel, VLabel)> = FxHashSet::default();
    let mut elabels: FxHashSet<ELabel> = FxHashSet::default();
    for g in db {
        for e in g.edges() {
            let a = g.vlabel(e.u);
            let b = g.vlabel(e.v);
            leaf_triples.insert((a, e.label, b));
            leaf_triples.insert((b, e.label, a));
            elabels.insert(e.label);
        }
    }
    let mut leaf_triples: Vec<_> = leaf_triples.into_iter().collect();
    leaf_triples.sort_unstable();
    let mut elabels: Vec<_> = elabels.into_iter().collect();
    elabels.sort_unstable();

    let mut result: Vec<MinedGraph> = level.values().cloned().collect();
    stats.patterns = result.len();

    let mut size = 1usize;
    while size < psi.max_l {
        let Some(next_threshold) = psi.threshold(size + 1) else {
            break;
        };
        let next_threshold = next_threshold as usize;
        let mut candidates: FxHashMap<CanonCode, Graph> = FxHashMap::default();
        'outer: for m in level.values() {
            let g = &m.graph;
            // (a) leaf extensions
            for at in g.vertices() {
                let at_label = g.vlabel(at);
                for &(a, el, leaf) in leaf_triples.iter() {
                    if a != at_label {
                        continue;
                    }
                    let mut b = copy_builder(g);
                    let nv = b.add_vertex(leaf);
                    b.add_edge(at, nv, el).expect("fresh leaf");
                    let cand = b.build();
                    let code = canonical_code(&cand);
                    if candidates.contains_key(&code) {
                        continue;
                    }
                    stats.candidates += 1;
                    candidates.insert(code, cand);
                    if candidates.len() >= limits.max_candidates_per_level {
                        stats.truncated = true;
                        break 'outer;
                    }
                }
            }
            // (b) closing edges
            for u in g.vertices() {
                for v in g.vertices() {
                    if v.0 <= u.0 || g.edge_between(u, v).is_some() {
                        continue;
                    }
                    for &el in &elabels {
                        if !leaf_triples.contains(&(g.vlabel(u), el, g.vlabel(v))) {
                            continue;
                        }
                        let mut b = copy_builder(g);
                        b.add_edge(u, v, el).expect("closing a non-edge");
                        let cand = b.build();
                        let code = canonical_code(&cand);
                        if candidates.contains_key(&code) {
                            continue;
                        }
                        stats.candidates += 1;
                        candidates.insert(code, cand);
                        if candidates.len() >= limits.max_candidates_per_level {
                            stats.truncated = true;
                            break 'outer;
                        }
                    }
                }
            }
        }

        let mut next_level: FxHashMap<CanonCode, MinedGraph> = FxHashMap::default();
        for (code, cand) in candidates {
            let subs = edge_removal_codes(&cand);
            let mut sub_supports: Vec<&[u32]> = Vec::with_capacity(subs.len());
            let mut pruned = false;
            for s in &subs {
                match level.get(s) {
                    Some(m) => sub_supports.push(&m.support),
                    None => {
                        pruned = true;
                        break;
                    }
                }
            }
            if pruned || sub_supports.is_empty() {
                stats.apriori_pruned += 1;
                continue;
            }
            let candidate_set = intersect_many(&sub_supports, db.len());
            if candidate_set.len() < next_threshold {
                continue;
            }
            let mut support: SupportSet = Vec::new();
            let remaining = candidate_set.len();
            for (i, &gid) in candidate_set.iter().enumerate() {
                if support.len() + (remaining - i) < next_threshold {
                    break;
                }
                stats.embed_tests += 1;
                if graph_core::is_subgraph_isomorphic(&cand, &db[gid as usize]) {
                    support.push(gid);
                }
            }
            if support.len() >= next_threshold {
                next_level.insert(
                    code.clone(),
                    MinedGraph {
                        graph: cand,
                        code,
                        support,
                    },
                );
            }
        }

        if next_level.is_empty() {
            break;
        }
        result.extend(next_level.values().cloned());
        stats.patterns = result.len();
        if result.len() >= limits.max_patterns {
            stats.truncated = true;
            break;
        }
        level = next_level;
        size += 1;
    }

    result.sort_by(|a, b| (a.size(), &a.code).cmp(&(b.size(), &b.code)));
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_core::graph_from;

    fn tiny_db() -> Vec<Graph> {
        vec![
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0), (2, 0, 1)]),
            graph_from(&[0, 0, 1], &[(0, 1, 0), (1, 2, 0)]),
            graph_from(&[0, 0, 1, 1], &[(0, 1, 0), (0, 2, 0), (0, 3, 1)]),
        ]
    }

    fn uniform_psi(max_l: usize) -> PsiFn {
        // theta so large that sqrt branch would demand too much; instead use
        // threshold 1 everywhere by keeping l < 4 … for tests with larger l
        // pick theta small.
        PsiFn { max_l, theta: 1.0 }
    }

    #[test]
    fn psi_paper_values() {
        let p = PsiFn::paper_default(10_000);
        assert_eq!(p.threshold(1), Some(1));
        assert_eq!(p.threshold(3), Some(1));
        // sqrt(4/10) * 1000 = 632.45… → 633
        assert_eq!(p.threshold(4), Some(633));
        assert_eq!(p.threshold(10), Some(1000));
        assert_eq!(p.threshold(11), None);
    }

    #[test]
    fn mines_cyclic_patterns() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_subgraphs(&db, &uniform_psi(3), &MiningLimits::default());
        // the triangle of graph 0 must be found
        let has_triangle = mined
            .iter()
            .any(|m| m.size() == 3 && m.graph.vertex_count() == 3);
        assert!(has_triangle, "triangle pattern missing");
    }

    #[test]
    fn supports_are_exact() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_subgraphs(&db, &uniform_psi(3), &MiningLimits::default());
        for m in &mined {
            let brute: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(&m.graph, g))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(m.support, brute, "wrong support for {:?}", m.graph);
        }
    }

    #[test]
    fn completeness_against_enumeration() {
        // Every connected subgraph (≤ max_l edges) of every graph is mined
        // when the threshold is 1.
        let db = tiny_db();
        let max_l = 3;
        let (mined, _) =
            mine_frequent_subgraphs(&db, &uniform_psi(max_l), &MiningLimits::default());
        let codes: FxHashSet<CanonCode> = mined.iter().map(|m| m.code.clone()).collect();
        for g in &db {
            let _ = graph_core::for_each_connected_edge_subset(g, max_l, |edges| {
                let sub = graph_core::edge_subgraph(g, edges);
                let code = canonical_code(&sub.graph);
                assert!(codes.contains(&code), "missing subgraph {:?}", sub.graph);
                std::ops::ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn no_duplicate_patterns() {
        let db = tiny_db();
        let (mined, _) = mine_frequent_subgraphs(&db, &uniform_psi(3), &MiningLimits::default());
        let mut codes: Vec<&CanonCode> = mined.iter().map(|m| &m.code).collect();
        let n = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    #[test]
    fn trees_are_subset_of_graph_patterns() {
        use crate::support::SigmaFn;
        use crate::tree_miner::mine_frequent_trees;
        let db = tiny_db();
        let (trees, _) = mine_frequent_trees(
            &db,
            &SigmaFn {
                alpha: 3,
                beta: 1.0,
                eta: 3,
            },
            &MiningLimits::default(),
        );
        let (graphs, _) = mine_frequent_subgraphs(&db, &uniform_psi(3), &MiningLimits::default());
        // every mined tree should appear among mined subgraphs (same support)
        for t in &trees {
            let code = canonical_code(t.tree.graph());
            let m = graphs
                .iter()
                .find(|m| m.code == code)
                .expect("tree pattern must be mined as a subgraph too");
            assert_eq!(m.support, t.support);
        }
        // and there are strictly more graph patterns (the triangle)
        assert!(graphs.len() > trees.len());
    }
}
