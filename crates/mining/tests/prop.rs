//! Property tests for mining: the three subtree-mining engines agree on
//! arbitrary databases, supports are exact, and σ thresholds are honored.

use graph_core::{ELabel, Graph, GraphBuilder, VLabel, VertexId};
use mining::*;
use proptest::prelude::*;

fn arb_connected_graph(nmax: usize) -> impl Strategy<Value = Graph> {
    (2..=nmax).prop_flat_map(move |n| {
        let vlabels = proptest::collection::vec(0u32..3, n);
        let parents = proptest::collection::vec((0usize..nmax, 0u32..2), n - 1);
        let extras = proptest::collection::vec((0usize..nmax, 0usize..nmax, 0u32..2), 0..2);
        (vlabels, parents, extras).prop_map(move |(vl, ps, ex)| {
            let mut b = GraphBuilder::new();
            for l in &vl {
                b.add_vertex(VLabel(*l));
            }
            for (i, (p, el)) in ps.iter().enumerate() {
                b.add_edge(
                    VertexId((i + 1) as u32),
                    VertexId((p % (i + 1)) as u32),
                    ELabel(*el),
                )
                .expect("tree edge");
            }
            for (u, v, el) in ex {
                let (u, v) = (VertexId((u % n) as u32), VertexId((v % n) as u32));
                if u != v && !b.has_edge(u, v) {
                    let _ = b.add_edge(u, v, ELabel(el));
                }
            }
            b.build()
        })
    })
}

fn keyed(mined: Vec<MinedTree>) -> Vec<(tree_core::CanonString, Vec<u32>)> {
    let mut out: Vec<_> = mined.into_iter().map(|m| (m.canon, m.support)).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn three_engines_agree(
        db in proptest::collection::vec(arb_connected_graph(6), 1..6),
        alpha in 1usize..3,
        beta in 1u32..3,
        eta in 2usize..4,
    ) {
        let sigma = SigmaFn { alpha, beta: beta as f64, eta: eta.max(alpha) };
        let limits = MiningLimits::default();
        let a = keyed(mine_frequent_trees_enum(&db, &sigma, &limits).0);
        let b = keyed(mine_frequent_trees_levelwise(&db, &sigma, &limits).0);
        let c = keyed(mine_frequent_trees_apriori(&db, &sigma, &limits).0);
        prop_assert_eq!(&a, &b, "enum vs levelwise");
        prop_assert_eq!(&a, &c, "enum vs apriori");
    }

    #[test]
    fn supports_are_exact_and_thresholds_hold(
        db in proptest::collection::vec(arb_connected_graph(6), 1..6),
    ) {
        let sigma = SigmaFn { alpha: 2, beta: 1.0, eta: 3 };
        let (mined, _) = mine_frequent_trees(&db, &sigma, &MiningLimits::default());
        for m in &mined {
            let brute: Vec<u32> = db
                .iter()
                .enumerate()
                .filter(|(_, g)| graph_core::is_subgraph_isomorphic(m.tree.graph(), g))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(&m.support, &brute);
            let thr = sigma.threshold(m.size()).expect("mined sizes are finite") as usize;
            prop_assert!(m.support.len() >= thr);
            prop_assert!(m.size() <= sigma.eta);
        }
        // no duplicates
        let mut canons: Vec<_> = mined.iter().map(|m| &m.canon).collect();
        let n = canons.len();
        canons.sort();
        canons.dedup();
        prop_assert_eq!(canons.len(), n);
    }

    /// The parallel miner is bit-for-bit identical to the serial miner at
    /// any thread count: same patterns in the same order, same
    /// representative trees, same support sets, same stats.
    #[test]
    fn parallel_mine_is_thread_count_invariant(
        db in proptest::collection::vec(arb_connected_graph(7), 1..8),
        alpha in 1usize..3,
        beta in 1u32..3,
        eta in 2usize..5,
    ) {
        let sigma = SigmaFn { alpha, beta: beta as f64, eta: eta.max(alpha) };
        let limits = MiningLimits::default();
        let (base, base_stats) = mine_frequent_trees_threads(&db, &sigma, &limits, 1);
        for threads in [2usize, 3, 8] {
            let (mined, stats) = mine_frequent_trees_threads(&db, &sigma, &limits, threads);
            prop_assert_eq!(stats, base_stats, "stats differ at threads={}", threads);
            prop_assert_eq!(mined.len(), base.len(), "pattern count differs at threads={}", threads);
            for (a, b) in base.iter().zip(&mined) {
                prop_assert_eq!(&a.canon, &b.canon, "canon order differs at threads={}", threads);
                prop_assert_eq!(&a.support, &b.support, "supports differ at threads={}", threads);
                prop_assert_eq!(
                    a.tree.graph(), b.tree.graph(),
                    "representative tree differs at threads={}", threads
                );
            }
        }
    }

    /// Soundness oracle: the parallel-mined pattern set and supports equal
    /// a brute-force subtree enumeration (independent of all miner
    /// machinery), so the merge can't silently drop or duplicate anything.
    #[test]
    fn parallel_mine_matches_bruteforce_oracle(
        db in proptest::collection::vec(arb_connected_graph(6), 1..6),
        alpha in 1usize..3,
        eta in 2usize..4,
    ) {
        let sigma = SigmaFn { alpha, beta: 1.0, eta: eta.max(alpha) };
        let (mined, _) = mine_frequent_trees_threads(&db, &sigma, &MiningLimits::default(), 8);

        // Oracle: enumerate every subtree edge subset of every graph,
        // canonicalize, collect support sets, apply the σ filter.
        let mut oracle: std::collections::BTreeMap<tree_core::CanonString, (usize, Vec<u32>)> =
            std::collections::BTreeMap::new();
        for (gid, g) in db.iter().enumerate() {
            let _ = graph_core::for_each_subtree_edge_subset(g, sigma.eta, |edges| {
                let sub = graph_core::edge_subgraph(g, edges);
                let t = tree_core::Tree::from_graph(sub.graph).expect("subtree");
                let c = tree_core::canonical_string(&t);
                let entry = oracle.entry(c).or_insert((edges.len(), Vec::new()));
                if entry.1.last() != Some(&(gid as u32)) {
                    entry.1.push(gid as u32);
                }
                std::ops::ControlFlow::<()>::Continue(())
            });
        }
        let expected: Vec<(tree_core::CanonString, Vec<u32>)> = oracle
            .into_iter()
            .filter_map(|(c, (size, support))| {
                let thr = sigma.threshold(size)? as usize;
                (support.len() >= thr).then_some((c, support))
            })
            .collect();
        prop_assert_eq!(keyed(mined), expected);
    }

    /// `max_patterns` truncation is deterministic under parallelism: the
    /// cutoff is taken in (size, canonical string) order, so a truncated
    /// parallel mine equals a truncated serial mine, and both equal the
    /// (size, canon)-ordered prefix of the untruncated result.
    #[test]
    fn truncation_is_thread_count_invariant(
        db in proptest::collection::vec(arb_connected_graph(6), 2..7),
        cap in 1usize..12,
    ) {
        let sigma = SigmaFn { alpha: 2, beta: 1.0, eta: 3 };
        let full_limits = MiningLimits::default();
        let capped = MiningLimits { max_patterns: cap, ..full_limits };
        let (serial, serial_stats) = mine_frequent_trees_threads(&db, &sigma, &capped, 1);
        for threads in [2usize, 8] {
            let (par, par_stats) = mine_frequent_trees_threads(&db, &sigma, &capped, threads);
            prop_assert_eq!(par_stats, serial_stats, "threads={}", threads);
            prop_assert_eq!(keyed(par), keyed(serial.clone()), "threads={}", threads);
        }
        // The truncated result is a prefix of the untruncated one in the
        // documented (size, canon) order.
        let (full, full_stats) = mine_frequent_trees_threads(&db, &sigma, &full_limits, 1);
        prop_assert!(!full_stats.truncated);
        prop_assert_eq!(serial.len(), full.len().min(cap));
        if full.len() > cap {
            prop_assert!(serial_stats.truncated);
        }
        for (a, b) in serial.iter().zip(&full) {
            prop_assert_eq!(&a.canon, &b.canon, "not a (size, canon) prefix");
            prop_assert_eq!(&a.support, &b.support);
        }
    }

    #[test]
    fn shrinking_is_a_subset_and_keeps_edges(
        db in proptest::collection::vec(arb_connected_graph(6), 1..6),
        gamma in 1u32..4,
    ) {
        let sigma = SigmaFn { alpha: 3, beta: 1.0, eta: 3 };
        let (mined, _) = mine_frequent_trees(&db, &sigma, &MiningLimits::default());
        let before: std::collections::HashSet<_> =
            mined.iter().map(|m| m.canon.clone()).collect();
        let singles: Vec<_> = mined.iter().filter(|m| m.size() == 1).map(|m| m.canon.clone()).collect();
        let kept = shrink_features(mined, gamma as f64);
        for m in &kept {
            prop_assert!(before.contains(&m.canon), "shrinking invented a feature");
        }
        // every single-edge tree survives (completeness)
        let kept_set: std::collections::HashSet<_> = kept.iter().map(|m| m.canon.clone()).collect();
        for c in singles {
            prop_assert!(kept_set.contains(&c), "shrinking dropped a single edge");
        }
    }
}
